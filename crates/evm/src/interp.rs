//! The bytecode interpreter.

use std::sync::Arc;

use proxion_asm::opcode as op;
use proxion_primitives::{Address, B256, U256};

use crate::gas::Gas;
use crate::host::{Host, Snapshot};
use crate::inspector::{CallRecord, Inspector, StorageAccess};
use crate::memory::Memory;
use crate::stack::{Origin, Stack, TaggedWord};
use crate::types::{
    CallKind, CallResult, Env, HaltReason, Log, Message, CALL_STIPEND, MAX_CALL_DEPTH,
};

/// EIP-170 deployed-code size limit.
const MAX_CODE_SIZE: usize = 24_576;

/// Cap on distinct bytecodes whose jump-destination maps are cached per
/// EVM instance; the cache is dropped wholesale when it fills (probe
/// sessions touch a handful of codes, so eviction policy is irrelevant).
const JUMPDEST_CACHE_LIMIT: usize = 256;

/// A mark of the EVM's complete mutable execution state — the host's
/// journal position plus the transient-storage journal position —
/// returned by [`Evm::checkpoint`] and consumed by [`Evm::revert_to`].
///
/// Unlike a raw host [`Snapshot`], a `Checkpoint` also covers EIP-1153
/// transient storage, so rolling back to it restores everything a probe
/// could have perturbed. Reverting to the same checkpoint repeatedly is
/// valid (rollback truncates the journals to the saved positions), which
/// is what lets a [`crate::ProbeSession`] reuse one checkpoint across an
/// arbitrary number of probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    host: Snapshot,
    transient: usize,
}

impl Checkpoint {
    /// The host-journal snapshot this checkpoint wraps.
    pub fn host_snapshot(self) -> Snapshot {
        self.host
    }
}

/// Reusable per-frame scratch (operand stack + memory). Pooled on the
/// EVM so nested frames and repeated probes reuse the same allocations.
#[derive(Default)]
struct FrameScratch {
    stack: Stack,
    memory: Memory,
}

/// The EVM: executes [`Message`]s against a [`Host`].
///
/// See the crate-level documentation for an example.
pub struct Evm<'h, 'i, H: Host> {
    host: &'h mut H,
    env: Env,
    inspector: Option<&'i mut dyn Inspector>,
    call_records: usize,
    /// EIP-1153 transient storage: per-transaction, per-account, cleared
    /// at the start of every top-level call and rolled back with reverted
    /// frames.
    transient: std::collections::HashMap<(Address, U256), U256>,
    transient_journal: Vec<((Address, U256), U256)>,
    /// Pool of cleared frame scratches, reused across frames and calls so
    /// the steady-state probe loop performs no stack/memory allocations.
    frames: Vec<FrameScratch>,
    /// Jump-destination maps keyed by `(code pointer, code length)`. The
    /// cached `Arc<Vec<u8>>` keeps the bytecode allocation alive, so a
    /// pointer can never be reused by a different code blob while its
    /// entry is resident.
    jumpdest_cache: std::collections::HashMap<(usize, usize), CachedJumpdests>,
}

/// A cached jumpdest analysis: the bytecode `Arc` anchoring the cache
/// key's pointer identity, plus the valid-destination bitmap.
type CachedJumpdests = (Arc<Vec<u8>>, Arc<Vec<bool>>);

impl<'h, 'i, H: Host> Evm<'h, 'i, H> {
    /// Creates an EVM without an inspector.
    pub fn new(host: &'h mut H, env: Env) -> Self {
        Evm {
            host,
            env,
            inspector: None,
            call_records: 0,
            transient: std::collections::HashMap::new(),
            transient_journal: Vec::new(),
            frames: Vec::new(),
            jumpdest_cache: std::collections::HashMap::new(),
        }
    }

    /// Creates an EVM that reports execution events to `inspector`.
    pub fn with_inspector(host: &'h mut H, env: Env, inspector: &'i mut dyn Inspector) -> Self {
        Evm {
            host,
            env,
            inspector: Some(inspector),
            call_records: 0,
            transient: std::collections::HashMap::new(),
            transient_journal: Vec::new(),
            frames: Vec::new(),
            jumpdest_cache: std::collections::HashMap::new(),
        }
    }

    /// The host this EVM executes against. Probe sessions use this to
    /// apply deliberately unjournaled setup (e.g. replay code overrides)
    /// between probes.
    pub fn host_mut(&mut self) -> &mut H {
        self.host
    }

    /// Marks the complete mutable execution state: the host journal plus
    /// the transient-storage journal. [`Evm::revert_to`] restores it.
    pub fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint {
            host: self.host.snapshot(),
            transient: self.transient_journal.len(),
        }
    }

    /// Rolls back every journaled mutation — host state and transient
    /// storage — made after `checkpoint` was taken. The checkpoint stays
    /// valid: reverting to it again after further execution works.
    pub fn revert_to(&mut self, checkpoint: Checkpoint) {
        self.host.rollback(checkpoint.host);
        self.rollback_transient(checkpoint.transient);
    }

    /// Executes a top-level message call and returns its outcome. State
    /// changes of failed frames are rolled back; successful changes are
    /// left in the host (call [`crate::MemoryDb::commit`] or roll back via
    /// a snapshot taken beforehand, as the caller prefers).
    pub fn call(&mut self, msg: Message) -> CallResult {
        // Transient storage lives for exactly one transaction.
        self.transient.clear();
        self.transient_journal.clear();
        let mut inspector = self.inspector.take();
        let result = self.execute_message(msg, 0, inspector.as_deref_mut());
        self.inspector = inspector;
        result
    }

    /// [`Evm::call`] with a per-call inspector: the stored inspector (if
    /// any) is bypassed for this call. Probe sessions use this to attach
    /// a fresh recorder to each probe while keeping one EVM — and its
    /// warm caches — alive across the whole probe set.
    pub fn call_with(&mut self, msg: Message, inspector: &mut dyn Inspector) -> CallResult {
        self.transient.clear();
        self.transient_journal.clear();
        self.execute_message(msg, 0, Some(inspector))
    }

    fn execute_message(
        &mut self,
        msg: Message,
        depth: usize,
        insp: Option<&mut (dyn Inspector + '_)>,
    ) -> CallResult {
        if depth > MAX_CALL_DEPTH {
            return CallResult::halted(HaltReason::CallDepthExceeded, 0);
        }
        if msg.kind.is_create() {
            self.execute_create(msg, depth, insp)
        } else {
            self.execute_call(msg, depth, insp)
        }
    }

    fn execute_call(
        &mut self,
        msg: Message,
        depth: usize,
        insp: Option<&mut (dyn Inspector + '_)>,
    ) -> CallResult {
        let snapshot = self.host.snapshot();
        let transient_mark = self.transient_journal.len();
        // Only plain CALLs move value between distinct accounts;
        // CALLCODE/DELEGATECALL run in the caller's own context and
        // STATICCALL carries no value.
        if msg.kind == CallKind::Call
            && !msg.value.is_zero()
            && !self.host.transfer(msg.caller, msg.target, msg.value)
        {
            self.host.rollback(snapshot);
            return CallResult::halted(HaltReason::InsufficientBalance, 0);
        }
        let code = self.host.code(msg.code_address);
        if code.is_empty() {
            return CallResult {
                halt: HaltReason::Success,
                output: Vec::new(),
                gas_used: 0,
                logs: Vec::new(),
                created: None,
            };
        }
        let mut gas = Gas::new(msg.gas_limit);
        let (halt, output, mut logs) = self.run_frame(&msg, &code, &mut gas, depth, insp);
        if !halt.is_success() {
            self.host.rollback(snapshot);
            self.rollback_transient(transient_mark);
            logs.clear();
        }
        CallResult {
            halt,
            output,
            gas_used: gas.used(),
            logs,
            created: None,
        }
    }

    fn execute_create(
        &mut self,
        msg: Message,
        depth: usize,
        insp: Option<&mut (dyn Inspector + '_)>,
    ) -> CallResult {
        let snapshot = self.host.snapshot();
        let transient_mark = self.transient_journal.len();
        let target = msg.target;
        // Address collision: an account with code or a used nonce blocks
        // creation.
        if !self.host.code(target).is_empty() || self.host.nonce(target) > 0 {
            return CallResult::halted(HaltReason::CreateCollision, msg.gas_limit);
        }
        self.host.inc_nonce(target);
        if !msg.value.is_zero() && !self.host.transfer(msg.caller, target, msg.value) {
            self.host.rollback(snapshot);
            return CallResult::halted(HaltReason::InsufficientBalance, 0);
        }
        let init_code: Arc<Vec<u8>> = Arc::new(msg.input.clone());
        let frame_msg = Message {
            input: Vec::new(),
            ..msg.clone()
        };
        let mut gas = Gas::new(msg.gas_limit);
        let (halt, output, logs) = self.run_frame(&frame_msg, &init_code, &mut gas, depth, insp);
        if !halt.is_success() {
            self.host.rollback(snapshot);
            self.rollback_transient(transient_mark);
            return CallResult {
                halt,
                output,
                gas_used: gas.used(),
                logs: Vec::new(),
                created: None,
            };
        }
        if output.len() > MAX_CODE_SIZE {
            self.host.rollback(snapshot);
            return CallResult::halted(HaltReason::CodeSizeLimit, gas.used());
        }
        // Code deposit cost: 200 gas per byte.
        if !gas.charge(200 * output.len() as u64) {
            self.host.rollback(snapshot);
            return CallResult::halted(HaltReason::OutOfGas, gas.used());
        }
        self.host.set_code(target, output);
        CallResult {
            halt: HaltReason::Success,
            output: Vec::new(),
            gas_used: gas.used(),
            logs,
            created: Some(target),
        }
    }

    /// Looks up (or computes and caches) the jump-destination map for a
    /// bytecode blob. Keyed by allocation identity: the same `Arc` seen
    /// again — the steady state of a probe session — costs one hash
    /// lookup instead of an O(code) scan plus allocation.
    fn jumpdests_for(&mut self, code: &Arc<Vec<u8>>) -> Arc<Vec<bool>> {
        let key = (Arc::as_ptr(code) as *const u8 as usize, code.len());
        if let Some((cached_code, dests)) = self.jumpdest_cache.get(&key) {
            if Arc::ptr_eq(cached_code, code) {
                return Arc::clone(dests);
            }
        }
        if self.jumpdest_cache.len() >= JUMPDEST_CACHE_LIMIT {
            self.jumpdest_cache.clear();
        }
        let dests = Arc::new(analyze_jumpdests(code));
        self.jumpdest_cache
            .insert(key, (Arc::clone(code), Arc::clone(&dests)));
        dests
    }

    /// Runs one frame to completion. Returns the halt reason, the output
    /// bytes and the logs emitted by this frame and its successful
    /// children.
    ///
    /// Stack and memory come from the frame pool; the cleared scratch is
    /// returned to the pool afterwards so repeated frames (nested calls,
    /// session probes) reuse the same allocations.
    fn run_frame(
        &mut self,
        msg: &Message,
        code: &Arc<Vec<u8>>,
        gas: &mut Gas,
        depth: usize,
        insp: Option<&mut (dyn Inspector + '_)>,
    ) -> (HaltReason, Vec<u8>, Vec<Log>) {
        let valid_jumpdests = self.jumpdests_for(code);
        let mut scratch = self.frames.pop().unwrap_or_default();
        let out = self.run_frame_inner(msg, code, &valid_jumpdests, gas, depth, insp, &mut scratch);
        scratch.stack.clear();
        scratch.memory.clear();
        self.frames.push(scratch);
        out
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run_frame_inner(
        &mut self,
        msg: &Message,
        code: &Arc<Vec<u8>>,
        valid_jumpdests: &[bool],
        gas: &mut Gas,
        depth: usize,
        mut insp: Option<&mut (dyn Inspector + '_)>,
        scratch: &mut FrameScratch,
    ) -> (HaltReason, Vec<u8>, Vec<Log>) {
        let stack = &mut scratch.stack;
        let memory = &mut scratch.memory;
        let mut return_data: Vec<u8> = Vec::new();
        let mut logs: Vec<Log> = Vec::new();
        let mut pc = 0usize;

        macro_rules! halt {
            ($reason:expr) => {
                return ($reason, Vec::new(), logs)
            };
        }
        macro_rules! pop {
            () => {
                match stack.pop() {
                    Ok(w) => w,
                    Err(_) => halt!(HaltReason::StackUnderflow(pc)),
                }
            };
        }
        macro_rules! push {
            ($word:expr) => {
                if stack.push($word).is_err() {
                    halt!(HaltReason::StackOverflow(pc));
                }
            };
        }
        macro_rules! push_val {
            ($value:expr, $origin:expr) => {
                push!(TaggedWord::with_origin($value, $origin))
            };
        }
        macro_rules! charge {
            ($amount:expr) => {
                if !gas.charge($amount) {
                    halt!(HaltReason::OutOfGas);
                }
            };
        }
        macro_rules! mem_charge {
            ($end:expr) => {
                if !gas.charge_memory($end) {
                    halt!(HaltReason::OutOfGas);
                }
            };
        }
        /// Converts a U256 to a usize usable as a memory offset/length; a
        /// value beyond 2^32 can never be paid for, so it is out-of-gas.
        macro_rules! as_usize {
            ($word:expr) => {
                match $word.try_into_usize() {
                    Some(v) if v <= u32::MAX as usize => v,
                    _ => halt!(HaltReason::OutOfGas),
                }
            };
        }

        loop {
            let opcode = match code.get(pc) {
                Some(&b) => b,
                None => halt!(HaltReason::Success), // running off the end == STOP
            };
            let Some(info) = op::info(opcode) else {
                halt!(HaltReason::InvalidOpcode(opcode));
            };
            if let Some(inspector) = insp.as_deref_mut() {
                inspector.on_step(pc, opcode, depth);
            }
            charge!(info.gas as u64);

            match opcode {
                op::STOP => halt!(HaltReason::Success),

                // ---- arithmetic ----
                op::ADD => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value.wrapping_add(b.value), Origin::Computed);
                }
                op::MUL => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value.wrapping_mul(b.value), Origin::Computed);
                }
                op::SUB => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value.wrapping_sub(b.value), Origin::Computed);
                }
                op::DIV => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value / b.value, a.origin.combine(b.origin));
                }
                op::SDIV => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value.sdiv(b.value), Origin::Computed);
                }
                op::MOD => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value % b.value, a.origin.combine(b.origin));
                }
                op::SMOD => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value.smod(b.value), Origin::Computed);
                }
                op::ADDMOD => {
                    let (a, b, n) = (pop!(), pop!(), pop!());
                    push_val!(a.value.addmod(b.value, n.value), Origin::Computed);
                }
                op::MULMOD => {
                    let (a, b, n) = (pop!(), pop!(), pop!());
                    push_val!(a.value.mulmod(b.value, n.value), Origin::Computed);
                }
                op::EXP => {
                    let (base, exp) = (pop!(), pop!());
                    // 50 gas per byte of exponent.
                    charge!(50 * exp.value.bit_len().div_ceil(8) as u64);
                    push_val!(base.value.wrapping_pow(exp.value), Origin::Computed);
                }
                op::SIGNEXTEND => {
                    let (b, x) = (pop!(), pop!());
                    push_val!(x.value.signextend(b.value), Origin::Computed);
                }

                // ---- comparison & bitwise ----
                op::LT => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(U256::from(a.value < b.value), Origin::Computed);
                }
                op::GT => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(U256::from(a.value > b.value), Origin::Computed);
                }
                op::SLT => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(U256::from(a.value.slt(b.value)), Origin::Computed);
                }
                op::SGT => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(U256::from(a.value.sgt(b.value)), Origin::Computed);
                }
                op::EQ => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(U256::from(a.value == b.value), Origin::Computed);
                }
                op::ISZERO => {
                    let a = pop!();
                    push_val!(U256::from(a.value.is_zero()), Origin::Computed);
                }
                op::AND => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value & b.value, a.origin.combine(b.origin));
                }
                op::OR => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value | b.value, a.origin.combine(b.origin));
                }
                op::XOR => {
                    let (a, b) = (pop!(), pop!());
                    push_val!(a.value ^ b.value, Origin::Computed);
                }
                op::NOT => {
                    let a = pop!();
                    push_val!(!a.value, a.origin);
                }
                op::BYTE => {
                    let (i, x) = (pop!(), pop!());
                    let byte = match i.value.try_into_usize() {
                        Some(idx) => x.value.byte_be(idx),
                        None => 0,
                    };
                    push_val!(U256::from(byte as u64), Origin::Computed);
                }
                op::SHL => {
                    let (shift, x) = (pop!(), pop!());
                    push_val!(x.value << shift.value, x.origin.combine(shift.origin));
                }
                op::SHR => {
                    let (shift, x) = (pop!(), pop!());
                    push_val!(x.value >> shift.value, x.origin.combine(shift.origin));
                }
                op::SAR => {
                    let (shift, x) = (pop!(), pop!());
                    push_val!(x.value.sar(shift.value), Origin::Computed);
                }

                // ---- keccak ----
                op::KECCAK256 => {
                    let (off, len) = (pop!(), pop!());
                    let len = as_usize!(len.value);
                    let off = if len == 0 { 0 } else { as_usize!(off.value) };
                    mem_charge!(off + len);
                    charge!(6 * (len as u64).div_ceil(32));
                    let data = memory.read(off, len);
                    push_val!(
                        proxion_primitives::keccak256(&data).to_u256(),
                        Origin::Computed
                    );
                }

                // ---- environment ----
                op::ADDRESS => push_val!(U256::from(msg.target), Origin::Environment),
                op::BALANCE => {
                    let a = pop!();
                    let balance = self.host.balance(Address::from_word(a.value));
                    push_val!(balance, Origin::Environment);
                }
                op::ORIGIN => push_val!(U256::from(self.env.tx.origin), Origin::Environment),
                op::CALLER => push_val!(U256::from(msg.caller), Origin::Environment),
                op::CALLVALUE => push_val!(msg.value, Origin::Environment),
                op::CALLDATALOAD => {
                    let off = pop!();
                    let word = match off.value.try_into_usize() {
                        Some(o) => load_padded_word(&msg.input, o),
                        None => U256::ZERO,
                    };
                    push_val!(word, Origin::Calldata);
                }
                op::CALLDATASIZE => {
                    push_val!(U256::from(msg.input.len()), Origin::Environment)
                }
                op::CALLDATACOPY => {
                    let (dst, src, len) = (pop!(), pop!(), pop!());
                    let len = as_usize!(len.value);
                    if len > 0 {
                        let dst = as_usize!(dst.value);
                        mem_charge!(dst + len);
                        charge!(3 * (len as u64).div_ceil(32));
                        let slice = data_slice(&msg.input, src.value, len);
                        memory.write_padded(dst, &slice, len);
                    }
                }
                op::CODESIZE => push_val!(U256::from(code.len()), Origin::Environment),
                op::CODECOPY => {
                    let (dst, src, len) = (pop!(), pop!(), pop!());
                    let len = as_usize!(len.value);
                    if len > 0 {
                        let dst = as_usize!(dst.value);
                        mem_charge!(dst + len);
                        charge!(3 * (len as u64).div_ceil(32));
                        let slice = data_slice(code, src.value, len);
                        memory.write_padded(dst, &slice, len);
                    }
                }
                op::GASPRICE => push_val!(self.env.tx.gas_price, Origin::Environment),
                op::EXTCODESIZE => {
                    let a = pop!();
                    let size = self.host.code(Address::from_word(a.value)).len();
                    push_val!(U256::from(size), Origin::Environment);
                }
                op::EXTCODECOPY => {
                    let (a, dst, src, len) = (pop!(), pop!(), pop!(), pop!());
                    let len = as_usize!(len.value);
                    if len > 0 {
                        let dst = as_usize!(dst.value);
                        mem_charge!(dst + len);
                        charge!(3 * (len as u64).div_ceil(32));
                        let ext = self.host.code(Address::from_word(a.value));
                        let slice = data_slice(&ext, src.value, len);
                        memory.write_padded(dst, &slice, len);
                    }
                }
                op::RETURNDATASIZE => {
                    push_val!(U256::from(return_data.len()), Origin::Environment)
                }
                op::RETURNDATACOPY => {
                    let (dst, src, len) = (pop!(), pop!(), pop!());
                    let len = as_usize!(len.value);
                    if len > 0 {
                        let dst = as_usize!(dst.value);
                        let src = match src.value.try_into_usize() {
                            Some(s) if s + len <= return_data.len() => s,
                            _ => halt!(HaltReason::ReturnDataOutOfBounds),
                        };
                        mem_charge!(dst + len);
                        charge!(3 * (len as u64).div_ceil(32));
                        let slice = return_data[src..src + len].to_vec();
                        memory.write_padded(dst, &slice, len);
                    }
                }
                op::EXTCODEHASH => {
                    let a = pop!();
                    let hash = self.host.code_hash(Address::from_word(a.value));
                    push_val!(hash.to_u256(), Origin::Environment);
                }

                // ---- block info ----
                op::BLOCKHASH => {
                    let n = pop!();
                    let hash = match n.value.try_into_u64() {
                        Some(num) if num < self.env.block.number => {
                            self.host.block_hash(num).to_u256()
                        }
                        _ => U256::ZERO,
                    };
                    push_val!(hash, Origin::Environment);
                }
                op::COINBASE => {
                    push_val!(U256::from(self.env.block.coinbase), Origin::Environment)
                }
                op::TIMESTAMP => {
                    push_val!(U256::from(self.env.block.timestamp), Origin::Environment)
                }
                op::NUMBER => push_val!(U256::from(self.env.block.number), Origin::Environment),
                op::DIFFICULTY => push_val!(self.env.block.prevrandao, Origin::Environment),
                op::GASLIMIT => {
                    push_val!(U256::from(self.env.block.gas_limit), Origin::Environment)
                }
                op::CHAINID => push_val!(U256::from(self.env.block.chain_id), Origin::Environment),
                op::SELFBALANCE => {
                    push_val!(self.host.balance(msg.target), Origin::Environment)
                }
                op::BASEFEE => push_val!(self.env.block.basefee, Origin::Environment),

                // ---- stack, memory, storage, flow ----
                op::POP => {
                    pop!();
                }
                op::MLOAD => {
                    let off = as_usize!(pop!().value);
                    mem_charge!(off + 32);
                    push_val!(memory.load_word(off), Origin::MemoryLoad);
                }
                op::MSTORE => {
                    let (off, val) = (pop!(), pop!());
                    let off = as_usize!(off.value);
                    mem_charge!(off + 32);
                    memory.store_word(off, val.value);
                }
                op::MSTORE8 => {
                    let (off, val) = (pop!(), pop!());
                    let off = as_usize!(off.value);
                    mem_charge!(off + 1);
                    memory.store_byte(off, val.value.low_u64() as u8);
                }
                op::SLOAD => {
                    let slot = pop!();
                    let value = self.host.storage(msg.target, slot.value);
                    if let Some(inspector) = insp.as_deref_mut() {
                        inspector.on_storage(StorageAccess {
                            address: msg.target,
                            slot: slot.value,
                            value,
                            is_write: false,
                        });
                    }
                    push_val!(value, Origin::StorageSlot(slot.value));
                }
                op::SSTORE => {
                    if msg.is_static {
                        halt!(HaltReason::StaticViolation(opcode));
                    }
                    let (slot, value) = (pop!(), pop!());
                    charge!(5000);
                    self.host.set_storage(msg.target, slot.value, value.value);
                    if let Some(inspector) = insp.as_deref_mut() {
                        inspector.on_storage(StorageAccess {
                            address: msg.target,
                            slot: slot.value,
                            value: value.value,
                            is_write: true,
                        });
                    }
                }
                op::JUMP => {
                    let dest = pop!();
                    let dest = match dest.value.try_into_usize() {
                        Some(d) if valid_jumpdests.get(d).copied().unwrap_or(false) => d,
                        _ => halt!(HaltReason::InvalidJump(pc)),
                    };
                    pc = dest;
                    continue;
                }
                op::JUMPI => {
                    let (dest, cond) = (pop!(), pop!());
                    if !cond.value.is_zero() {
                        let dest = match dest.value.try_into_usize() {
                            Some(d) if valid_jumpdests.get(d).copied().unwrap_or(false) => d,
                            _ => halt!(HaltReason::InvalidJump(pc)),
                        };
                        pc = dest;
                        continue;
                    }
                }
                op::PC => push_val!(U256::from(pc), Origin::Environment),
                op::MSIZE => push_val!(U256::from(memory.len()), Origin::Environment),
                op::GAS => push_val!(U256::from(gas.remaining()), Origin::Environment),
                op::JUMPDEST => {}
                op::TLOAD => {
                    let slot = pop!();
                    let value = self
                        .transient
                        .get(&(msg.target, slot.value))
                        .copied()
                        .unwrap_or(U256::ZERO);
                    push_val!(value, Origin::Computed);
                }
                op::TSTORE => {
                    if msg.is_static {
                        halt!(HaltReason::StaticViolation(opcode));
                    }
                    let (slot, value) = (pop!(), pop!());
                    let key = (msg.target, slot.value);
                    let prev = self.transient.get(&key).copied().unwrap_or(U256::ZERO);
                    self.transient_journal.push((key, prev));
                    self.transient.insert(key, value.value);
                }
                op::MCOPY => {
                    let (dst, src, len) = (pop!(), pop!(), pop!());
                    let len = as_usize!(len.value);
                    if len > 0 {
                        let dst = as_usize!(dst.value);
                        let src = as_usize!(src.value);
                        mem_charge!(src + len);
                        mem_charge!(dst + len);
                        charge!(3 * (len as u64).div_ceil(32));
                        let data = memory.read(src, len);
                        memory.write_padded(dst, &data, len);
                    }
                }

                // ---- pushes, dups, swaps ----
                op::PUSH0 => push_val!(U256::ZERO, Origin::CodeConstant),
                _ if (op::PUSH1..=op::PUSH32).contains(&opcode) => {
                    let n = op::immediate_len(opcode);
                    let end = (pc + 1 + n).min(code.len());
                    let value = U256::from_be_slice(&code[pc + 1..end]);
                    // Truncated immediates at the end of code are
                    // zero-padded on the right per the yellow paper.
                    let missing = (pc + 1 + n).saturating_sub(code.len());
                    let value = if missing > 0 {
                        value << (8 * missing as u32)
                    } else {
                        value
                    };
                    push_val!(value, Origin::CodeConstant);
                    pc += 1 + n;
                    continue;
                }
                _ if (op::DUP1..=op::DUP16).contains(&opcode) => {
                    let n = (opcode - op::DUP1 + 1) as usize;
                    match stack.dup(n) {
                        Ok(()) => {}
                        Err(crate::stack::StackError::Underflow) => {
                            halt!(HaltReason::StackUnderflow(pc))
                        }
                        Err(crate::stack::StackError::Overflow) => {
                            halt!(HaltReason::StackOverflow(pc))
                        }
                    }
                }
                _ if (op::SWAP1..=op::SWAP16).contains(&opcode) => {
                    let n = (opcode - op::SWAP1 + 1) as usize;
                    if stack.swap(n).is_err() {
                        halt!(HaltReason::StackUnderflow(pc));
                    }
                }

                // ---- logs ----
                _ if (op::LOG0..=op::LOG4).contains(&opcode) => {
                    if msg.is_static {
                        halt!(HaltReason::StaticViolation(opcode));
                    }
                    let topic_count = (opcode - op::LOG0) as usize;
                    let (off, len) = (pop!(), pop!());
                    let len = as_usize!(len.value);
                    let off = if len == 0 { 0 } else { as_usize!(off.value) };
                    mem_charge!(off + len);
                    charge!(8 * len as u64);
                    let mut topics = Vec::with_capacity(topic_count);
                    for _ in 0..topic_count {
                        topics.push(B256::from(pop!().value));
                    }
                    let log = Log {
                        address: msg.target,
                        topics,
                        data: memory.read(off, len),
                    };
                    if let Some(inspector) = insp.as_deref_mut() {
                        inspector.on_log(&log);
                    }
                    logs.push(log);
                }

                // ---- creations ----
                op::CREATE | op::CREATE2 => {
                    if msg.is_static {
                        halt!(HaltReason::StaticViolation(opcode));
                    }
                    let value = pop!();
                    let (off, len) = (pop!(), pop!());
                    let salt = if opcode == op::CREATE2 {
                        Some(pop!().value)
                    } else {
                        None
                    };
                    let len = as_usize!(len.value);
                    let off = if len == 0 { 0 } else { as_usize!(off.value) };
                    mem_charge!(off + len);
                    if opcode == op::CREATE2 {
                        charge!(6 * (len as u64).div_ceil(32));
                    }
                    let init_code = memory.read(off, len);
                    let new_address = match salt {
                        Some(salt) => msg
                            .target
                            .create2_address(salt, proxion_primitives::keccak256(&init_code)),
                        None => {
                            let nonce = self.host.nonce(msg.target);
                            msg.target.create_address(nonce)
                        }
                    };
                    self.host.inc_nonce(msg.target);
                    let child_gas = gas.max_forwardable();
                    charge!(child_gas);
                    let kind = if opcode == op::CREATE2 {
                        CallKind::Create2
                    } else {
                        CallKind::Create
                    };
                    let child = Message {
                        kind,
                        caller: msg.target,
                        target: new_address,
                        code_address: new_address,
                        input: init_code,
                        value: value.value,
                        gas_limit: child_gas,
                        is_static: false,
                        salt,
                    };
                    let record_index = self.record_call(
                        &child,
                        TaggedWord::computed(U256::from(new_address)),
                        depth,
                        insp.as_deref_mut(),
                    );
                    let result = self.execute_message(child, depth + 1, insp.as_deref_mut());
                    self.finish_call(record_index, &result, insp.as_deref_mut());
                    gas.reclaim(child_gas.saturating_sub(result.gas_used));
                    return_data = if result.halt == HaltReason::Revert {
                        result.output.clone()
                    } else {
                        Vec::new()
                    };
                    if result.is_success() {
                        logs.extend(result.logs);
                        push_val!(U256::from(new_address), Origin::Computed);
                    } else {
                        push_val!(U256::ZERO, Origin::Computed);
                    }
                }

                // ---- calls ----
                op::CALL | op::CALLCODE | op::DELEGATECALL | op::STATICCALL => {
                    let _gas_word = pop!();
                    let addr_word = pop!();
                    let value = if opcode == op::CALL || opcode == op::CALLCODE {
                        pop!().value
                    } else {
                        U256::ZERO
                    };
                    if opcode == op::CALL && msg.is_static && !value.is_zero() {
                        halt!(HaltReason::StaticViolation(opcode));
                    }
                    let (in_off, in_len) = (pop!(), pop!());
                    let (out_off, out_len) = (pop!(), pop!());
                    let in_len = as_usize!(in_len.value);
                    let in_off = if in_len == 0 {
                        0
                    } else {
                        as_usize!(in_off.value)
                    };
                    let out_len = as_usize!(out_len.value);
                    let out_off = if out_len == 0 {
                        0
                    } else {
                        as_usize!(out_off.value)
                    };
                    mem_charge!(in_off + in_len);
                    mem_charge!(out_off + out_len);
                    let input = memory.read(in_off, in_len);
                    let callee = Address::from_word(addr_word.value);

                    let mut child_gas = gas
                        .max_forwardable()
                        .min(_gas_word.value.try_into_u64().unwrap_or(u64::MAX));
                    charge!(child_gas);
                    if !value.is_zero() {
                        child_gas += CALL_STIPEND;
                    }

                    let (kind, child_caller, child_target, child_value, child_static) = match opcode
                    {
                        op::CALL => (CallKind::Call, msg.target, callee, value, msg.is_static),
                        op::CALLCODE => (
                            CallKind::CallCode,
                            msg.target,
                            msg.target,
                            value,
                            msg.is_static,
                        ),
                        op::DELEGATECALL => (
                            CallKind::DelegateCall,
                            msg.caller,
                            msg.target,
                            msg.value,
                            msg.is_static,
                        ),
                        _ => (CallKind::StaticCall, msg.target, callee, U256::ZERO, true),
                    };
                    let child = Message {
                        kind,
                        caller: child_caller,
                        target: child_target,
                        code_address: callee,
                        input,
                        value: child_value,
                        gas_limit: child_gas,
                        is_static: child_static,
                        salt: None,
                    };
                    let record_index =
                        self.record_call(&child, addr_word, depth, insp.as_deref_mut());
                    let result = self.execute_message(child, depth + 1, insp.as_deref_mut());
                    self.finish_call(record_index, &result, insp.as_deref_mut());
                    gas.reclaim(child_gas.saturating_sub(result.gas_used));
                    return_data = result.output.clone();
                    if out_len > 0 {
                        memory.write_padded(
                            out_off,
                            &result.output[..result.output.len().min(out_len)],
                            result.output.len().min(out_len),
                        );
                    }
                    if result.is_success() {
                        logs.extend(result.logs.clone());
                    }
                    push_val!(U256::from(result.is_success()), Origin::Computed);
                }

                // ---- halts ----
                op::RETURN => {
                    let (off, len) = (pop!(), pop!());
                    let len = as_usize!(len.value);
                    let off = if len == 0 { 0 } else { as_usize!(off.value) };
                    mem_charge!(off + len);
                    return (HaltReason::Success, memory.read(off, len), logs);
                }
                op::REVERT => {
                    let (off, len) = (pop!(), pop!());
                    let len = as_usize!(len.value);
                    let off = if len == 0 { 0 } else { as_usize!(off.value) };
                    mem_charge!(off + len);
                    return (HaltReason::Revert, memory.read(off, len), logs);
                }
                op::INVALID => halt!(HaltReason::InvalidOpcode(op::INVALID)),
                op::SELFDESTRUCT => {
                    if msg.is_static {
                        halt!(HaltReason::StaticViolation(opcode));
                    }
                    let beneficiary = Address::from_word(pop!().value);
                    let balance = self.host.balance(msg.target);
                    self.host.transfer(msg.target, beneficiary, balance);
                    self.host.mark_destroyed(msg.target);
                    halt!(HaltReason::Success);
                }

                other => halt!(HaltReason::InvalidOpcode(other)),
            }
            pc += 1;
        }
    }

    fn rollback_transient(&mut self, mark: usize) {
        while self.transient_journal.len() > mark {
            let (key, prev) = self.transient_journal.pop().expect("length checked");
            if prev.is_zero() {
                self.transient.remove(&key);
            } else {
                self.transient.insert(key, prev);
            }
        }
    }

    fn record_call(
        &mut self,
        child: &Message,
        target_word: TaggedWord,
        depth: usize,
        insp: Option<&mut (dyn Inspector + '_)>,
    ) -> usize {
        let index = self.call_records;
        self.call_records += 1;
        if let Some(inspector) = insp {
            inspector.on_call(&CallRecord {
                kind: child.kind,
                depth,
                caller: child.caller,
                target: child.target,
                code_address: child.code_address,
                target_word,
                input: child.input.clone(),
                value: child.value,
                success: None,
            });
        }
        index
    }

    fn finish_call(
        &mut self,
        record_index: usize,
        result: &CallResult,
        insp: Option<&mut (dyn Inspector + '_)>,
    ) {
        if let Some(inspector) = insp {
            inspector.on_call_end(record_index, result);
        }
    }
}

/// Marks every byte position holding a `JUMPDEST` opcode that is not inside
/// a push immediate.
fn analyze_jumpdests(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let opcode = code[i];
        if opcode == op::JUMPDEST {
            valid[i] = true;
        }
        i += 1 + op::immediate_len(opcode);
    }
    valid
}

/// Loads a 32-byte word from `data` at `offset`, zero-padded past the end.
fn load_padded_word(data: &[u8], offset: usize) -> U256 {
    let mut buf = [0u8; 32];
    if offset < data.len() {
        let n = (data.len() - offset).min(32);
        buf[..n].copy_from_slice(&data[offset..offset + n]);
    }
    U256::from_be_bytes(buf)
}

/// Extracts `len` bytes from `data` starting at a 256-bit offset,
/// zero-padding past the end.
fn data_slice(data: &[u8], offset: U256, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    if let Some(off) = offset.try_into_usize() {
        if off < data.len() {
            let n = (data.len() - off).min(len);
            out[..n].copy_from_slice(&data[off..off + n]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MemoryDb;
    use crate::inspector::RecordingInspector;
    use proxion_asm::{opcode, Assembler};

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    fn run_code(code: Vec<u8>, input: Vec<u8>) -> CallResult {
        let mut db = MemoryDb::new();
        let target = addr(0xc0de);
        db.set_code(target, code);
        let mut evm = Evm::new(&mut db, Env::default());
        evm.call(Message::eoa_call(addr(1), target, input))
    }

    #[test]
    fn add_and_return() {
        let mut asm = Assembler::new();
        asm.push(U256::from(2u64))
            .push(U256::from(40u64))
            .op(opcode::ADD)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let result = run_code(asm.assemble().unwrap(), vec![]);
        assert!(result.is_success());
        assert_eq!(U256::from_be_slice(&result.output), U256::from(42u64));
    }

    #[test]
    fn running_off_code_end_is_stop() {
        let result = run_code(vec![opcode::PUSH1, 1], vec![]);
        assert!(result.is_success());
        assert!(result.output.is_empty());
    }

    #[test]
    fn invalid_opcode_halts() {
        let result = run_code(vec![0x0c], vec![]);
        assert_eq!(result.halt, HaltReason::InvalidOpcode(0x0c));
    }

    #[test]
    fn truncated_push_is_zero_padded() {
        // PUSH2 with only one immediate byte available: value 0xff00.
        let code = vec![opcode::PUSH2, 0xff];
        let mut db = MemoryDb::new();
        db.set_code(addr(2), code);
        // The push runs off the end; frame stops. Just assert no panic.
        let mut evm = Evm::new(&mut db, Env::default());
        let result = evm.call(Message::eoa_call(addr(1), addr(2), vec![]));
        assert!(result.is_success());
    }

    #[test]
    fn jump_and_jumpi() {
        let mut asm = Assembler::new();
        let skip = asm.new_label();
        // if calldata word != 0 jump over the revert
        asm.op(opcode::PUSH0)
            .op(opcode::CALLDATALOAD)
            .jumpi_to(skip)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::REVERT)
            .label(skip)
            .push(U256::ONE)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let code = asm.assemble().unwrap();
        let ok = run_code(code.clone(), vec![1; 32]);
        assert!(ok.is_success());
        let rev = run_code(code, vec![]);
        assert_eq!(rev.halt, HaltReason::Revert);
    }

    #[test]
    fn jump_to_non_jumpdest_fails() {
        // PUSH1 0; JUMP — destination 0 is a PUSH, not a JUMPDEST.
        let result = run_code(vec![opcode::PUSH1, 0x00, opcode::JUMP], vec![]);
        assert!(matches!(result.halt, HaltReason::InvalidJump(_)));
    }

    #[test]
    fn jumpdest_inside_push_immediate_is_invalid() {
        // PUSH2 0x5b5b; PUSH1 1; JUMP — the 0x5b bytes are immediates.
        let code = vec![opcode::PUSH2, 0x5b, 0x5b, opcode::PUSH1, 0x01, opcode::JUMP];
        let result = run_code(code, vec![]);
        assert!(matches!(result.halt, HaltReason::InvalidJump(_)));
    }

    #[test]
    fn storage_persists_on_success_and_rolls_back_on_revert() {
        let target = addr(0xaa);
        // SSTORE(0, 7); then REVERT or STOP depending on calldata.
        let mut asm = Assembler::new();
        let stop = asm.new_label();
        asm.push(U256::from(7u64))
            .op(opcode::PUSH0)
            .op(opcode::SSTORE)
            .op(opcode::PUSH0)
            .op(opcode::CALLDATALOAD)
            .jumpi_to(stop)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::REVERT)
            .label(stop)
            .op(opcode::STOP);
        let code = asm.assemble().unwrap();

        let mut db = MemoryDb::new();
        db.set_code(target, code);
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), target, vec![]));
        assert_eq!(r.halt, HaltReason::Revert);
        assert_eq!(db.storage(target, U256::ZERO), U256::ZERO);

        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), target, vec![1; 32]));
        assert!(r.is_success());
        assert_eq!(db.storage(target, U256::ZERO), U256::from(7u64));
    }

    #[test]
    fn sload_carries_storage_provenance() {
        let target = addr(0xbb);
        let mut asm = Assembler::new();
        // SLOAD slot 3, AND with address mask, DELEGATECALL-like usage is
        // covered elsewhere; here we just return the loaded value.
        asm.push(U256::from(3u64))
            .op(opcode::SLOAD)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(target, asm.assemble().unwrap());
        db.set_storage(target, U256::from(3u64), U256::from(0x55u64));
        db.commit();
        let mut insp = RecordingInspector::new();
        let mut evm = Evm::with_inspector(&mut db, Env::default(), &mut insp);
        let r = evm.call(Message::eoa_call(addr(1), target, vec![]));
        assert!(r.is_success());
        assert_eq!(insp.storage.len(), 1);
        assert!(!insp.storage[0].is_write);
        assert_eq!(insp.storage[0].slot, U256::from(3u64));
    }

    #[test]
    fn nested_call_and_returndata() {
        // Callee returns 32-byte value 99; caller forwards it.
        let callee = addr(0x2);
        let caller = addr(0x1a);
        let mut callee_asm = Assembler::new();
        callee_asm
            .push(U256::from(99u64))
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut caller_asm = Assembler::new();
        // CALL(gas, callee, 0, 0, 0, 0, 32) then RETURN memory[0..32]
        caller_asm
            .push(U256::from(32u64)) // out len
            .op(opcode::PUSH0) // out off
            .op(opcode::PUSH0) // in len
            .op(opcode::PUSH0) // in off
            .op(opcode::PUSH0) // value
            .push(U256::from(callee))
            .op(opcode::GAS)
            .op(opcode::CALL)
            .op(opcode::POP)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(callee, callee_asm.assemble().unwrap());
        db.set_code(caller, caller_asm.assemble().unwrap());
        let mut insp = RecordingInspector::new();
        let mut evm = Evm::with_inspector(&mut db, Env::default(), &mut insp);
        let r = evm.call(Message::eoa_call(addr(9), caller, vec![]));
        assert!(r.is_success());
        assert_eq!(U256::from_be_slice(&r.output), U256::from(99u64));
        assert_eq!(insp.calls.len(), 1);
        assert_eq!(insp.calls[0].kind, CallKind::Call);
        assert_eq!(insp.calls[0].success, Some(true));
    }

    #[test]
    fn delegatecall_runs_in_caller_context() {
        // Logic writes 5 to slot 0 of *its* storage context; when invoked
        // via DELEGATECALL the write must land in the proxy's storage.
        let logic = addr(0x10);
        let proxy = addr(0x11);
        let mut logic_asm = Assembler::new();
        logic_asm
            .push(U256::from(5u64))
            .op(opcode::PUSH0)
            .op(opcode::SSTORE)
            .op(opcode::STOP);
        let mut proxy_asm = Assembler::new();
        proxy_asm
            .op(opcode::PUSH0) // out len
            .op(opcode::PUSH0) // out off
            .op(opcode::PUSH0) // in len
            .op(opcode::PUSH0) // in off
            .push(U256::from(logic))
            .op(opcode::GAS)
            .op(opcode::DELEGATECALL)
            .op(opcode::POP)
            .op(opcode::STOP);
        let mut db = MemoryDb::new();
        db.set_code(logic, logic_asm.assemble().unwrap());
        db.set_code(proxy, proxy_asm.assemble().unwrap());
        let mut insp = RecordingInspector::new();
        let mut evm = Evm::with_inspector(&mut db, Env::default(), &mut insp);
        let r = evm.call(Message::eoa_call(addr(9), proxy, vec![]));
        assert!(r.is_success());
        assert_eq!(db.storage(proxy, U256::ZERO), U256::from(5u64));
        assert_eq!(db.storage(logic, U256::ZERO), U256::ZERO);
        let d = insp.top_level_delegate().expect("delegate observed");
        assert_eq!(d.proxy, proxy);
        assert_eq!(d.logic, logic);
        assert_eq!(d.target_word.origin, Origin::CodeConstant);
    }

    #[test]
    fn delegatecall_address_from_storage_has_slot_provenance() {
        let logic = addr(0x20);
        let proxy = addr(0x21);
        let slot = U256::from(1u64);
        let mut proxy_asm = Assembler::new();
        proxy_asm
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(slot)
            .op(opcode::SLOAD)
            .op(opcode::GAS)
            .op(opcode::DELEGATECALL)
            .op(opcode::POP)
            .op(opcode::STOP);
        let mut db = MemoryDb::new();
        db.set_code(logic, vec![opcode::STOP]);
        db.set_code(proxy, proxy_asm.assemble().unwrap());
        db.set_storage(proxy, slot, U256::from(logic));
        db.commit();
        let mut insp = RecordingInspector::new();
        let mut evm = Evm::with_inspector(&mut db, Env::default(), &mut insp);
        let r = evm.call(Message::eoa_call(addr(9), proxy, vec![]));
        assert!(r.is_success());
        let d = insp.top_level_delegate().unwrap();
        assert_eq!(d.target_word.origin, Origin::StorageSlot(slot));
        assert_eq!(d.logic, logic);
    }

    #[test]
    fn staticcall_blocks_sstore() {
        let callee = addr(0x30);
        let caller = addr(0x31);
        let mut callee_asm = Assembler::new();
        callee_asm
            .push(U256::ONE)
            .op(opcode::PUSH0)
            .op(opcode::SSTORE)
            .op(opcode::STOP);
        let mut caller_asm = Assembler::new();
        caller_asm
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(U256::from(callee))
            .op(opcode::GAS)
            .op(opcode::STATICCALL)
            // return the success flag
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(callee, callee_asm.assemble().unwrap());
        db.set_code(caller, caller_asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), caller, vec![]));
        assert!(r.is_success());
        assert_eq!(
            U256::from_be_slice(&r.output),
            U256::ZERO,
            "child must fail"
        );
        assert_eq!(db.storage(callee, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn create_deploys_runtime_code() {
        // Init code returns a 1-byte runtime: STOP.
        // PUSH1 0x00 (STOP byte via MSTORE8), RETURN 1 byte at offset 0.
        let mut init = Assembler::new();
        init.push(U256::from(opcode::STOP as u64))
            .op(opcode::PUSH0)
            .op(opcode::MSTORE8)
            .push(U256::ONE)
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let init_code = init.assemble().unwrap();
        let deployer = addr(0x40);
        let mut db = MemoryDb::new();
        db.set_balance(deployer, U256::from(1u64) << 64u32);
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::create(deployer, init_code, U256::ZERO));
        assert!(r.is_success());
        let created = r.created.expect("address assigned");
        assert_eq!(*db.code(created), vec![opcode::STOP]);
    }

    #[test]
    fn create_opcode_pushes_new_address() {
        // Contract that CREATEs an empty contract and returns the address.
        let factory = addr(0x50);
        let mut asm = Assembler::new();
        asm.op(opcode::PUSH0) // len
            .op(opcode::PUSH0) // off
            .op(opcode::PUSH0) // value
            .op(opcode::CREATE)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(factory, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), factory, vec![]));
        assert!(r.is_success());
        let created = Address::from_word(U256::from_be_slice(&r.output));
        assert!(!created.is_zero());
        assert_eq!(created, factory.create_address(0));
    }

    #[test]
    fn out_of_gas_on_infinite_loop() {
        // JUMPDEST; PUSH0; JUMP(0) forever.
        let code = vec![opcode::JUMPDEST, opcode::PUSH0, opcode::JUMP];
        let mut db = MemoryDb::new();
        db.set_code(addr(0x60), code);
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), addr(0x60), vec![]).with_gas(100_000));
        assert_eq!(r.halt, HaltReason::OutOfGas);
        assert_eq!(r.gas_used, 100_000);
    }

    #[test]
    fn value_transfer_and_balances() {
        let receiver = addr(0x70);
        let sender = addr(0x71);
        let mut db = MemoryDb::new();
        db.set_balance(sender, U256::from(100u64));
        db.set_code(receiver, vec![opcode::STOP]);
        let r = Evm::new(&mut db, Env::default())
            .call(Message::eoa_call(sender, receiver, vec![]).with_value(U256::from(40u64)));
        assert!(r.is_success());
        assert_eq!(db.balance(receiver), U256::from(40u64));
        assert_eq!(db.balance(sender), U256::from(60u64));

        let r = Evm::new(&mut db, Env::default())
            .call(Message::eoa_call(sender, receiver, vec![]).with_value(U256::from(1000u64)));
        assert_eq!(r.halt, HaltReason::InsufficientBalance);
    }

    #[test]
    fn calldata_opcodes() {
        // Return CALLDATASIZE and word at offset 0.
        let mut asm = Assembler::new();
        asm.op(opcode::CALLDATASIZE)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .op(opcode::PUSH0)
            .op(opcode::CALLDATALOAD)
            .push(U256::from(32u64))
            .op(opcode::MSTORE)
            .push(U256::from(64u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let input = vec![0xab; 4];
        let r = run_code(asm.assemble().unwrap(), input);
        assert!(r.is_success());
        assert_eq!(U256::from_be_slice(&r.output[..32]), U256::from(4u64));
        // 0xabababab padded right with zeros.
        let expected = U256::from_be_slice(&[0xab, 0xab, 0xab, 0xab]) << 224u32;
        assert_eq!(U256::from_be_slice(&r.output[32..]), expected);
    }

    #[test]
    fn keccak_opcode_matches_primitive() {
        let mut asm = Assembler::new();
        // keccak256 of empty range.
        asm.op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::KECCAK256)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let r = run_code(asm.assemble().unwrap(), vec![]);
        assert!(r.is_success());
        assert_eq!(
            U256::from_be_slice(&r.output),
            proxion_primitives::keccak256([]).to_u256()
        );
    }

    #[test]
    fn selfdestruct_moves_balance_and_marks_destroyed() {
        let victim = addr(0x80);
        let heir = addr(0x81);
        let mut asm = Assembler::new();
        asm.push(U256::from(heir)).op(opcode::SELFDESTRUCT);
        let mut db = MemoryDb::new();
        db.set_code(victim, asm.assemble().unwrap());
        db.set_balance(victim, U256::from(33u64));
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), victim, vec![]));
        assert!(r.is_success());
        assert!(db.is_destroyed(victim));
        assert_eq!(db.balance(heir), U256::from(33u64));
        assert_eq!(db.balance(victim), U256::ZERO);
    }

    #[test]
    fn logs_collected_and_reverted_logs_dropped() {
        let emitter = addr(0x90);
        let mut asm = Assembler::new();
        // LOG1 with topic 7, then STOP or REVERT by calldata.
        let stop = asm.new_label();
        asm.push(U256::from(7u64))
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::LOG1)
            .op(opcode::PUSH0)
            .op(opcode::CALLDATALOAD)
            .jumpi_to(stop)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::REVERT)
            .label(stop)
            .op(opcode::STOP);
        let mut db = MemoryDb::new();
        db.set_code(emitter, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let ok = evm.call(Message::eoa_call(addr(9), emitter, vec![1; 32]));
        assert_eq!(ok.logs.len(), 1);
        assert_eq!(ok.logs[0].topics[0], B256::from(U256::from(7u64)));
        let rev = evm.call(Message::eoa_call(addr(9), emitter, vec![]));
        assert!(rev.logs.is_empty());
    }

    #[test]
    fn env_opcodes_reflect_env() {
        let mut env = Env::default();
        env.block.number = 1234;
        env.block.chain_id = 1;
        let mut asm = Assembler::new();
        asm.op(opcode::NUMBER)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .op(opcode::CHAINID)
            .push(U256::from(32u64))
            .op(opcode::MSTORE)
            .push(U256::from(64u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(addr(3), asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, env);
        let r = evm.call(Message::eoa_call(addr(9), addr(3), vec![]));
        assert_eq!(U256::from_be_slice(&r.output[..32]), U256::from(1234u64));
        assert_eq!(U256::from_be_slice(&r.output[32..]), U256::ONE);
    }

    #[test]
    fn call_to_empty_account_succeeds() {
        let caller = addr(0xa1);
        let mut asm = Assembler::new();
        asm.op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(U256::from(addr(0xdead)))
            .op(opcode::GAS)
            .op(opcode::CALL)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(caller, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), caller, vec![]));
        assert_eq!(U256::from_be_slice(&r.output), U256::ONE);
    }

    #[test]
    fn returndatacopy_out_of_bounds_halts() {
        let caller = addr(0xb1);
        let mut asm = Assembler::new();
        // No call made: return buffer is empty; copying 1 byte must halt.
        asm.push(U256::ONE) // len
            .op(opcode::PUSH0) // src
            .op(opcode::PUSH0) // dst
            .op(opcode::RETURNDATACOPY);
        let mut db = MemoryDb::new();
        db.set_code(caller, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), caller, vec![]));
        assert_eq!(r.halt, HaltReason::ReturnDataOutOfBounds);
    }

    #[test]
    fn stack_underflow_reported() {
        let r = run_code(vec![opcode::ADD], vec![]);
        assert!(matches!(r.halt, HaltReason::StackUnderflow(0)));
    }

    #[test]
    fn call_depth_limit_halts_cyclic_delegation() {
        // A self-delegating contract recurses until MAX_CALL_DEPTH; the
        // overall transaction must terminate cleanly (the inner frames
        // fail with CallDepthExceeded and the proxy bubbles a revert).
        let target = addr(0xdee9);
        let mut asm = Assembler::new();
        let revert_label = asm.new_label();
        asm.op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(U256::from(target))
            .op(opcode::GAS)
            .op(opcode::DELEGATECALL)
            .op(opcode::ISZERO)
            .jumpi_to(revert_label)
            .op(opcode::STOP)
            .label(revert_label)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::REVERT);
        let mut db = MemoryDb::new();
        db.set_code(target, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), target, vec![]));
        // The innermost failure propagates up as reverts; the key property
        // is termination without a native stack overflow.
        assert!(!r.is_success());
    }

    #[test]
    fn eip150_limits_forwarded_gas() {
        // A child burning unbounded gas cannot consume the parent's last
        // 1/64th: the parent still completes.
        let burner = addr(0xb0b0);
        let parent = addr(0xb0b1);
        // Burner: infinite loop.
        let mut burner_asm = Assembler::new();
        let top = burner_asm.new_label();
        burner_asm.label(top);
        burner_asm.jump_to(top);
        // Parent: CALL burner (all gas implicitly), then RETURN 32 bytes.
        let mut parent_asm = Assembler::new();
        parent_asm
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(U256::from(burner))
            .op(opcode::GAS)
            .op(opcode::CALL)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(burner, burner_asm.assemble().unwrap());
        db.set_code(parent, parent_asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), parent, vec![]).with_gas(1_000_000));
        assert!(r.is_success(), "parent must survive the burner: {}", r.halt);
        assert_eq!(
            U256::from_be_slice(&r.output),
            U256::ZERO,
            "child ran out of gas"
        );
        assert!(r.gas_used < 1_000_000, "the 1/64 reserve was kept");
    }

    #[test]
    fn transient_storage_round_trip_within_tx() {
        // TSTORE(5, 99); TLOAD(5) -> return.
        let mut asm = Assembler::new();
        asm.push(U256::from(99u64))
            .push(U256::from(5u64))
            .op(opcode::TSTORE)
            .push(U256::from(5u64))
            .op(opcode::TLOAD)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let code = asm.assemble().unwrap();
        let target = addr(0x7_10ad);
        let mut db = MemoryDb::new();
        db.set_code(target, code);
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), target, vec![]));
        assert!(r.is_success());
        assert_eq!(U256::from_be_slice(&r.output), U256::from(99u64));
        // Persistent storage untouched.
        assert_eq!(db.storage(target, U256::from(5u64)), U256::ZERO);

        // A second transaction starts with cleared transient storage.
        let mut asm = Assembler::new();
        asm.push(U256::from(5u64))
            .op(opcode::TLOAD)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let reader = addr(0x7_10ae);
        db.set_code(reader, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), reader, vec![]));
        assert_eq!(U256::from_be_slice(&r.output), U256::ZERO);
    }

    #[test]
    fn transient_writes_of_reverted_child_rolled_back() {
        // Child TSTOREs then reverts; parent TLOADs the same slot of ITS
        // OWN context... transient is per-address, so use DELEGATECALL to
        // share the context.
        let child = addr(0x100);
        let parent = addr(0x101);
        let mut child_asm = Assembler::new();
        child_asm
            .push(U256::from(7u64))
            .op(opcode::PUSH0)
            .op(opcode::TSTORE)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::REVERT);
        let mut parent_asm = Assembler::new();
        parent_asm
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(U256::from(child))
            .op(opcode::GAS)
            .op(opcode::DELEGATECALL)
            .op(opcode::POP)
            .op(opcode::PUSH0)
            .op(opcode::TLOAD)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(child, child_asm.assemble().unwrap());
        db.set_code(parent, parent_asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), parent, vec![]));
        assert!(r.is_success());
        assert_eq!(
            U256::from_be_slice(&r.output),
            U256::ZERO,
            "reverted child's transient write must be rolled back"
        );
    }

    #[test]
    fn tstore_rejected_in_static_context() {
        let callee = addr(0x110);
        let caller = addr(0x111);
        let mut callee_asm = Assembler::new();
        callee_asm
            .push(U256::ONE)
            .op(opcode::PUSH0)
            .op(opcode::TSTORE)
            .op(opcode::STOP);
        let mut caller_asm = Assembler::new();
        caller_asm
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .op(opcode::PUSH0)
            .push(U256::from(callee))
            .op(opcode::GAS)
            .op(opcode::STATICCALL)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(callee, callee_asm.assemble().unwrap());
        db.set_code(caller, caller_asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(1), caller, vec![]));
        assert_eq!(
            U256::from_be_slice(&r.output),
            U256::ZERO,
            "static TSTORE must fail"
        );
    }

    #[test]
    fn mcopy_moves_memory() {
        // mem[0]=0xAB..; MCOPY(64, 0, 32); return mem[64..96].
        let mut asm = Assembler::new();
        asm.push(U256::from(0xab00cdu64))
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64)) // len
            .op(opcode::PUSH0) // src
            .push(U256::from(64u64)) // dst
            .op(opcode::MCOPY)
            .push(U256::from(64u64))
            .op(opcode::MLOAD)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let r = run_code(asm.assemble().unwrap(), vec![]);
        assert!(r.is_success(), "MCOPY failed: {}", r.halt);
        assert_eq!(U256::from_be_slice(&r.output), U256::from(0xab00cdu64));
    }

    #[test]
    fn callcode_runs_callee_code_in_caller_storage() {
        // Like delegatecall but msg.sender becomes the caller contract.
        let logic = addr(0x120);
        let user = addr(0x121);
        let mut logic_asm = Assembler::new();
        // sstore(0, caller)
        logic_asm
            .op(opcode::CALLER)
            .op(opcode::PUSH0)
            .op(opcode::SSTORE)
            .op(opcode::STOP);
        let mut user_asm = Assembler::new();
        user_asm
            .op(opcode::PUSH0) // out len
            .op(opcode::PUSH0) // out off
            .op(opcode::PUSH0) // in len
            .op(opcode::PUSH0) // in off
            .op(opcode::PUSH0) // value
            .push(U256::from(logic))
            .op(opcode::GAS)
            .op(opcode::CALLCODE)
            .op(opcode::POP)
            .op(opcode::STOP);
        let mut db = MemoryDb::new();
        db.set_code(logic, logic_asm.assemble().unwrap());
        db.set_code(user, user_asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), user, vec![]));
        assert!(r.is_success());
        // Write lands in USER's storage (shared context)...
        assert_eq!(db.storage(logic, U256::ZERO), U256::ZERO);
        // ...and msg.sender inside the frame is the user contract itself
        // (CALLCODE semantics), not the EOA.
        assert_eq!(db.storage(user, U256::ZERO), U256::from(user));
    }

    #[test]
    fn create2_address_matches_eip1014_derivation() {
        let factory = addr(0x130);
        // CREATE2 with empty init code and salt 0x42; return the address.
        let mut asm = Assembler::new();
        asm.push(U256::from(0x42u64)) // salt
            .op(opcode::PUSH0) // len
            .op(opcode::PUSH0) // off
            .op(opcode::PUSH0) // value
            .op(opcode::CREATE2)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(32u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(factory, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), factory, vec![]));
        assert!(r.is_success());
        let created = Address::from_word(U256::from_be_slice(&r.output));
        let expected =
            factory.create2_address(U256::from(0x42u64), proxion_primitives::keccak256([]));
        assert_eq!(created, expected);
    }

    #[test]
    fn extcode_opcodes_reflect_other_accounts() {
        let other = addr(0x140);
        let prober = addr(0x141);
        let other_code = vec![opcode::STOP, opcode::STOP, opcode::STOP];
        let mut asm = Assembler::new();
        // return (extcodesize(other), extcodehash(other))
        asm.push(U256::from(other))
            .op(opcode::EXTCODESIZE)
            .op(opcode::PUSH0)
            .op(opcode::MSTORE)
            .push(U256::from(other))
            .op(opcode::EXTCODEHASH)
            .push(U256::from(32u64))
            .op(opcode::MSTORE)
            .push(U256::from(64u64))
            .op(opcode::PUSH0)
            .op(opcode::RETURN);
        let mut db = MemoryDb::new();
        db.set_code(other, other_code.clone());
        db.set_code(prober, asm.assemble().unwrap());
        let mut evm = Evm::new(&mut db, Env::default());
        let r = evm.call(Message::eoa_call(addr(9), prober, vec![]));
        assert!(r.is_success());
        assert_eq!(U256::from_be_slice(&r.output[..32]), U256::from(3u64));
        assert_eq!(
            U256::from_be_slice(&r.output[32..]),
            proxion_primitives::keccak256(&other_code).to_u256()
        );
    }
}
