//! The CLI subcommands.

use std::sync::Arc;

use parking_lot::RwLock;
use proxion_baselines::{CrushLike, UschuntLike};
use proxion_chain::Chain;
use proxion_core::{
    FunctionCollisionDetector, Pipeline, PipelineConfig, ProxyDetector, ProxyStandard,
    StorageCollisionDetector, Upgradeability,
};
use proxion_dataset::{CollisionCorpus, ExploitCorpus, Landscape, LandscapeConfig};
use proxion_disasm::{extract_dispatcher_selectors, naive_push4_selectors, Cfg, Disassembly};
use proxion_primitives::{decode_hex, encode_hex, selector, Address, U256};
use proxion_replay::ReplayEngine;
use proxion_service::json::{self, JsonValue};
use proxion_service::{loadgen as service_loadgen, server, LoadgenConfig, ServerConfig};
use proxion_solc::{compile, templates};

/// Removes `flag` from `args`, reporting whether it was present.
fn take_flag(args: &[String], flag: &str) -> (bool, Vec<String>) {
    let present = args.iter().any(|a| a == flag);
    let rest = args.iter().filter(|a| *a != flag).cloned().collect();
    (present, rest)
}

/// Removes `flag` and its value from `args`, returning the value.
fn take_value(args: &[String], flag: &str) -> Result<(Option<String>, Vec<String>), String> {
    let mut value = None;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            value = Some(
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))?,
            );
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((value, rest))
}

/// `proxion inspect [--json] [--trace FILE] <hex-file-or-string>`
pub fn inspect(args: &[String]) -> Result<(), String> {
    let (as_json, args) = take_flag(args, "--json");
    let (trace_path, args) = take_value(&args, "--trace")?;
    let input = args
        .first()
        .ok_or("inspect needs a hex file path or hex string")?;
    let hex = match std::fs::read_to_string(input) {
        Ok(contents) => contents.trim().to_string(),
        Err(_) => input.clone(),
    };
    let code = decode_hex(&hex).map_err(|e| format!("invalid hex: {e}"))?;
    if code.is_empty() {
        return Err("empty bytecode".into());
    }
    if let Some(path) = trace_path {
        traced_detection(&code, &path)?;
    }
    if as_json {
        return inspect_json(&code);
    }
    println!("bytecode: {} bytes", code.len());

    let disasm = Disassembly::new(&code);
    println!("instructions: {}", disasm.instructions().len());
    println!("jumpdests: {}", disasm.jumpdests().len());

    let has_delegate = disasm.contains(proxion_asm_delegatecall());
    println!(
        "DELEGATECALL gate: {}",
        if has_delegate {
            "present (proxy candidate — needs emulation to confirm)"
        } else {
            "absent (not a proxy)"
        }
    );

    let info = extract_dispatcher_selectors(&disasm);
    println!(
        "call-data prelude: {}",
        if info.has_calldata_prelude {
            "found"
        } else {
            "not found"
        }
    );
    println!("dispatcher selectors ({}):", info.selectors.len());
    for s in &info.selectors {
        println!("  0x{}", encode_hex(s));
    }
    let naive = naive_push4_selectors(&disasm, &Cfg::new(&disasm));
    let junk: Vec<_> = naive.difference(&info.selectors).collect();
    if !junk.is_empty() {
        println!(
            "PUSH4 immediates that are NOT dispatcher selectors ({}):",
            junk.len()
        );
        for s in junk {
            println!("  0x{}  (naive scan would miscount this)", encode_hex(s));
        }
    }

    let layout = StorageCollisionDetector::new().layout_of(&code);
    println!("storage access regions ({}):", layout.len());
    for region in &layout {
        println!("  {region}");
    }

    if code.len() <= 256 {
        println!("\ndisassembly:");
        print!("{}", disasm.listing());
    } else {
        println!(
            "\n(disassembly suppressed: {} bytes; first 24 instructions)",
            code.len()
        );
        for insn in disasm.instructions().iter().take(24) {
            println!("{insn}");
        }
    }
    Ok(())
}

// Local alias to avoid importing the asm crate for one constant.
fn proxion_asm_delegatecall() -> u8 {
    0xf4
}

/// Runs the full detection against the bytecode on a scratch chain with
/// telemetry enabled, and writes the Chrome-trace JSON (plus a sibling
/// `.folded` flamegraph input) to `path`.
fn traced_detection(code: &[u8], path: &str) -> Result<(), String> {
    use proxion_telemetry::{Stage, Telemetry, TelemetryConfig};

    let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
    let mut chain = Chain::new();
    let deployer = chain.new_funded_account();
    let address = chain
        .install_new(deployer, code.to_vec())
        .map_err(|e| e.to_string())?;
    let detector = ProxyDetector::new().with_telemetry(Arc::clone(&telemetry));
    let check = {
        let _span = telemetry.span(Stage::Other, "inspect_trace");
        detector.check(&chain, address)
    };
    println!(
        "traced detection: {}",
        if check.is_proxy() {
            "PROXY"
        } else {
            "not a proxy"
        }
    );
    std::fs::write(path, proxion_telemetry::chrome_trace(&telemetry))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    let folded = format!("{path}.folded");
    std::fs::write(&folded, proxion_telemetry::folded_stacks(&telemetry))
        .map_err(|e| format!("cannot write {folded}: {e}"))?;
    println!("trace written to {path} (load in Perfetto or chrome://tracing)");
    println!("folded stacks written to {folded} (flamegraph.pl / inferno input)");
    for snapshot in telemetry.stage_snapshot() {
        if snapshot.count > 0 {
            println!(
                "  stage {:<20} {:>4} span(s), mean {:>8} ns, max {:>8} ns",
                snapshot.stage.name(),
                snapshot.count,
                snapshot.mean_ns(),
                snapshot.max_ns
            );
        }
    }
    let ops = telemetry.evm().total_ops();
    if ops > 0 {
        println!("  evm: {ops} opcodes executed during emulation");
    }
    Ok(())
}

/// Machine-readable `inspect` output.
fn inspect_json(code: &[u8]) -> Result<(), String> {
    let disasm = Disassembly::new(code);
    let info = extract_dispatcher_selectors(&disasm);
    let naive = naive_push4_selectors(&disasm, &Cfg::new(&disasm));
    let junk: Vec<JsonValue> = naive
        .difference(&info.selectors)
        .map(|s| format!("0x{}", encode_hex(s)).into())
        .collect();
    let selectors: Vec<JsonValue> = info
        .selectors
        .iter()
        .map(|s| format!("0x{}", encode_hex(s)).into())
        .collect();
    let layout = StorageCollisionDetector::new().layout_of(code);
    let doc = json::object(vec![
        ("bytes", code.len().into()),
        ("instructions", disasm.instructions().len().into()),
        ("jumpdests", disasm.jumpdests().len().into()),
        (
            "has_delegatecall",
            disasm.contains(proxion_asm_delegatecall()).into(),
        ),
        ("has_calldata_prelude", info.has_calldata_prelude.into()),
        ("dispatcher_selectors", JsonValue::Array(selectors)),
        ("non_dispatcher_push4", JsonValue::Array(junk)),
        (
            "storage_regions",
            json::parse(&json::to_json(&layout)).expect("valid JSON"),
        ),
    ]);
    println!("{}", json::to_json(&doc));
    Ok(())
}

/// `proxion landscape [--json] [contracts] [seed]`
pub fn landscape(args: &[String]) -> Result<(), String> {
    let (as_json, args) = take_flag(args, "--json");
    let contracts: usize = parse_or(args.first(), 1000)?;
    let seed: u64 = parse_or(args.get(1), 0x5eed)?;
    if !as_json {
        println!("generating landscape: {contracts} contracts, seed {seed:#x}...");
    }
    let landscape = Landscape::generate(&LandscapeConfig {
        seed,
        total_contracts: contracts,
    });
    let started = std::time::Instant::now();
    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: true,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");
    let artifact_stats = pipeline.artifacts().stats();
    let history_stats = pipeline.history_index().stats();
    // Execution-backed confirmation of every flagged collision pair: the
    // replay engine re-checks each one against an immutable snapshot.
    let verdicts = {
        let snapshot = landscape.chain.snapshot();
        let engine = ReplayEngine::new();
        report
            .reports
            .iter()
            .filter(|r| {
                r.function_collisions
                    .as_ref()
                    .is_some_and(|f| f.has_collisions())
                    || r.storage_collisions
                        .as_ref()
                        .is_some_and(|s| s.has_collisions())
            })
            .filter_map(|r| {
                // Replay against the chain's *terminal* logic — for a
                // multi-hop chain that is what the collision checks ran
                // against, not the first delegate.
                let logic = r
                    .delegation
                    .as_ref()
                    .filter(|d| d.is_resolved())
                    .map(|d| d.terminal)
                    .or_else(|| r.check.logic().filter(|l| !l.is_zero()))?;
                let selectors: Vec<[u8; 4]> = r
                    .function_collisions
                    .as_ref()
                    .map(|f| f.collisions.iter().map(|c| c.selector).collect())
                    .unwrap_or_default();
                engine
                    .confirm_pair(
                        &snapshot,
                        r.address,
                        logic,
                        r.delegation.as_ref(),
                        &selectors,
                    )
                    .ok()
            })
            .collect::<Vec<_>>()
    };
    let confirmed = verdicts.iter().filter(|v| v.confirmed).count();
    // Score the upgradeability classifier against the generator's ground
    // truth (labels match `Upgradeability::label` by construction).
    let truth_labels: std::collections::HashMap<Address, &'static str> = landscape
        .contracts
        .iter()
        .filter_map(|c| c.truth.upgradeability.map(|u| (c.address, u.label())))
        .collect();
    let mut upgradeability_scored = 0usize;
    let mut upgradeability_correct = 0usize;
    for r in &report.reports {
        if let Some(truth) = truth_labels.get(&r.address) {
            upgradeability_scored += 1;
            if r.upgradeability.as_ref().map(|u| u.label()) == Some(*truth) {
                upgradeability_correct += 1;
            }
        }
    }
    let upgradeability_accuracy = if upgradeability_scored == 0 {
        1.0
    } else {
        upgradeability_correct as f64 / upgradeability_scored as f64
    };
    let classes = report.upgradeability_distribution();
    let class_count = |key: Upgradeability| -> usize { classes.get(&key).copied().unwrap_or(0) };
    if as_json {
        let standards = report.standard_distribution();
        let standard_members: Vec<(&str, JsonValue)> = [
            ("eip1167", ProxyStandard::Eip1167),
            ("eip1822", ProxyStandard::Eip1822),
            ("eip1967", ProxyStandard::Eip1967),
            ("beacon", ProxyStandard::Beacon),
            ("nonstandard_slot", ProxyStandard::NonStandardSlot),
            ("other", ProxyStandard::Other),
        ]
        .into_iter()
        .map(|(label, key)| (label, standards.get(&key).copied().unwrap_or(0).into()))
        .collect();
        let doc = json::object(vec![
            ("contracts", report.total().into()),
            ("proxies", report.proxy_count().into()),
            ("hidden_proxies", report.hidden_proxy_count().into()),
            ("standards", json::object(standard_members)),
            ("multi_hop_proxies", report.multi_hop_proxy_count().into()),
            (
                "upgradeability",
                json::object(vec![
                    ("frozen", class_count(Upgradeability::Frozen).into()),
                    ("proxy", class_count(Upgradeability::Proxy).into()),
                    (
                        "upgradeable_proxy",
                        class_count(Upgradeability::UpgradeableProxy).into(),
                    ),
                    ("scored", upgradeability_scored.into()),
                    ("correct", upgradeability_correct.into()),
                    ("accuracy", upgradeability_accuracy.into()),
                ]),
            ),
            (
                "function_collision_pairs",
                report.function_collision_count().into(),
            ),
            (
                "exploitable_storage_pairs",
                report.storage_collision_count().into(),
            ),
            ("upgraded_proxies", report.upgraded_proxy_count().into()),
            ("upgrade_events", report.total_upgrade_events().into()),
            ("source_errors", report.source_error_count().into()),
            ("unique_codehashes", artifact_stats.entries.into()),
            (
                "artifact_cache",
                json::parse(&json::to_json(&artifact_stats)).expect("valid JSON"),
            ),
            (
                "history_index",
                json::parse(&json::to_json(&history_stats)).expect("valid JSON"),
            ),
            ("replay_confirmed_pairs", confirmed.into()),
            (
                "replay",
                json::parse(&json::to_json(&verdicts)).expect("valid JSON"),
            ),
            (
                "reports",
                json::parse(&json::to_json(&report.reports)).expect("valid JSON"),
            ),
        ]);
        println!("{}", json::to_json(&doc));
        return Ok(());
    }
    println!(
        "analyzed {} contracts in {:.2}s",
        report.total(),
        started.elapsed().as_secs_f64()
    );
    println!(
        "proxies: {} ({} hidden)",
        report.proxy_count(),
        report.hidden_proxy_count()
    );
    let standards = report.standard_distribution();
    for (label, key) in [
        ("EIP-1167", ProxyStandard::Eip1167),
        ("EIP-1822", ProxyStandard::Eip1822),
        ("EIP-1967", ProxyStandard::Eip1967),
        ("beacon", ProxyStandard::Beacon),
        ("odd-slot", ProxyStandard::NonStandardSlot),
        ("others", ProxyStandard::Other),
    ] {
        println!("  {label:<9} {}", standards.get(&key).copied().unwrap_or(0));
    }
    println!(
        "delegation: {} multi-hop chains",
        report.multi_hop_proxy_count()
    );
    println!(
        "upgradeability: {} frozen, {} proxy, {} upgradeable ({}/{} correct vs ground truth, {:.1}%)",
        class_count(Upgradeability::Frozen),
        class_count(Upgradeability::Proxy),
        class_count(Upgradeability::UpgradeableProxy),
        upgradeability_correct,
        upgradeability_scored,
        100.0 * upgradeability_accuracy
    );
    println!(
        "collisions: {} function pairs, {} exploitable storage pairs",
        report.function_collision_count(),
        report.storage_collision_count()
    );
    println!(
        "upgrades: {} proxies upgraded ({} events)",
        report.upgraded_proxy_count(),
        report.total_upgrade_events()
    );
    println!(
        "artifacts: {} unique codehashes, {:.0}% cache reuse",
        artifact_stats.entries,
        100.0 * artifact_stats.hit_rate()
    );
    println!(
        "history: {} slot timelines, {} probes issued, {} saved",
        history_stats.entries, history_stats.probes_issued, history_stats.probes_saved
    );
    println!(
        "replay: {} flagged pairs re-executed, {} confirmed exploitable",
        verdicts.len(),
        confirmed
    );
    Ok(())
}

/// `proxion replay [--json] [seed]`
///
/// Generates the ground-truth exploit corpus (an exploitable and a
/// benign twin per scenario) and runs the replay engine's confirmation
/// pass over every case — the execution-backed severity measurement
/// behind the paper's Table 4.
pub fn replay(args: &[String]) -> Result<(), String> {
    let (as_json, args) = take_flag(args, "--json");
    let seed: u64 = parse_or(args.first(), 0x5eed)?;
    let corpus = ExploitCorpus::generate(seed);
    let snapshot = corpus.chain.snapshot();
    let engine = ReplayEngine::new();

    let mut rows = Vec::new();
    for case in &corpus.cases {
        // The corpus pins each case's provenance: a single-hop chain
        // bound through the recorded implementation slot.
        let delegation = proxion_core::DelegationChain::single_hop(
            case.proxy,
            proxion_chain::ChainSource::code_hash_at(&snapshot, case.proxy)
                .map_err(|e| format!("code hash failed for `{}`: {e}", case.name))?,
            proxion_core::ImplSource::StorageSlot(case.impl_slot),
            ProxyStandard::Other,
            case.logic,
            proxion_chain::ChainSource::head_block(&snapshot)
                .map_err(|e| format!("head read failed for `{}`: {e}", case.name))?,
        );
        let verdict = engine
            .confirm_pair(
                &snapshot,
                case.proxy,
                case.logic,
                Some(&delegation),
                &case.collided_selectors,
            )
            .map_err(|e| format!("replay failed for `{}`: {e}", case.name))?;
        rows.push((case, verdict));
    }

    if as_json {
        let cases: Vec<JsonValue> = rows
            .iter()
            .map(|(case, verdict)| {
                json::object(vec![
                    ("name", case.name.into()),
                    ("exploitable", case.exploitable.into()),
                    (
                        "verdict",
                        json::parse(&json::to_json(verdict)).expect("valid JSON"),
                    ),
                ])
            })
            .collect();
        println!("{}", json::to_json(&JsonValue::Array(cases)));
        return Ok(());
    }

    println!("case                       exploitable  confirmed evidence");
    let mut correct = 0;
    for (case, verdict) in &rows {
        if verdict.confirmed == case.exploitable {
            correct += 1;
        }
        println!(
            "{:<26} {:>11} {:>10} {}",
            case.name,
            case.exploitable,
            verdict.confirmed,
            verdict.kinds().join(",")
        );
    }
    println!("agreement with ground truth: {correct}/{}", rows.len());
    Ok(())
}

/// `proxion accuracy [per-kind]`
pub fn accuracy(args: &[String]) -> Result<(), String> {
    let per_kind: usize = parse_or(args.first(), 5)?;
    let corpus = CollisionCorpus::generate(0xacc, per_kind);
    println!("corpus: {} labeled pairs", corpus.pairs.len());

    let uschunt = UschuntLike::new();
    let crush = CrushLike::new();
    let proxion_fn = FunctionCollisionDetector::new();
    let proxion_st = StorageCollisionDetector::new();
    let detector = ProxyDetector::new();

    let mut rows = [
        ("USCHunt st", [0usize; 4]),
        ("CRUSH   st", [0; 4]),
        ("Proxion st", [0; 4]),
        ("USCHunt fn", [0; 4]),
        ("Proxion fn", [0; 4]),
    ];
    for pair in &corpus.pairs {
        let us_st = uschunt
            .storage_collisions(&corpus.etherscan, pair.proxy, pair.logic)
            .ok()
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        let crush_st = crush
            .storage_collisions(&corpus.chain, pair.proxy, pair.logic)
            .expect("in-memory chain reads are infallible")
            .has_exploitable();
        let is_proxy = detector.check(&corpus.chain, pair.proxy).is_proxy();
        let px_st = is_proxy
            && proxion_st
                .check_pair(&corpus.chain, pair.proxy, pair.logic)
                .expect("in-memory chain reads are infallible")
                .has_exploitable();
        let us_fn = uschunt
            .function_collisions(&corpus.etherscan, pair.proxy, pair.logic)
            .ok()
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        let px_fn = is_proxy
            && proxion_fn
                .check_pair(&corpus.chain, &corpus.etherscan, pair.proxy, pair.logic)
                .expect("in-memory chain reads are infallible")
                .has_collisions();
        for (row, (truth, flagged)) in rows.iter_mut().zip([
            (pair.truth_storage, us_st),
            (pair.truth_storage, crush_st),
            (pair.truth_storage, px_st),
            (pair.truth_function, us_fn),
            (pair.truth_function, px_fn),
        ]) {
            let bucket = match (truth, flagged) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            row.1[bucket] += 1;
        }
    }
    println!(
        "{:<12} {:>5} {:>5} {:>5} {:>5} {:>9}",
        "", "TP", "FP", "TN", "FN", "accuracy"
    );
    for (name, [tp, fp, tn, fn_]) in rows {
        let accuracy = 100.0 * (tp + tn) as f64 / (tp + fp + tn + fn_) as f64;
        println!("{name:<12} {tp:>5} {fp:>5} {tn:>5} {fn_:>5} {accuracy:>8.1}%");
    }
    Ok(())
}

/// `proxion demo <honeypot|audius>`
pub fn demo(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("honeypot") => demo_honeypot(),
        Some("audius") => demo_audius(),
        _ => Err("demo needs `honeypot` or `audius`".into()),
    }
}

fn demo_honeypot() -> Result<(), String> {
    let mut chain = Chain::new();
    let attacker = chain.new_funded_account();
    let victim = chain.new_funded_account();
    let (proxy_spec, logic_spec) = templates::honeypot_pair(chain.new_funded_account());
    let logic = chain
        .install_new(attacker, compile(&logic_spec).unwrap().runtime)
        .map_err(|e| e.to_string())?;
    let proxy = chain
        .install_new(attacker, compile(&proxy_spec).unwrap().runtime)
        .map_err(|e| e.to_string())?;
    chain.set_storage(proxy, U256::ONE, U256::from(logic));

    let bait = selector("free_ether_withdrawal()");
    let result = chain.transact(victim, proxy, bait.to_vec(), U256::ZERO);
    println!(
        "victim calls free_ether_withdrawal(): success = {}",
        result.is_success()
    );

    let check = ProxyDetector::new().check(&chain, proxy);
    println!(
        "proxy detection: {}",
        if check.is_proxy() { "PROXY" } else { "no" }
    );
    let report = FunctionCollisionDetector::new()
        .check_pair(&chain, &proxion_etherscan::Etherscan::new(), proxy, logic)
        .expect("in-memory chain reads are infallible");
    for collision in &report.collisions {
        println!("FUNCTION COLLISION: {collision}");
    }
    if report.has_collisions() {
        println!("verdict: honeypot — the bait selector never reaches the logic contract");
        Ok(())
    } else {
        Err("expected a collision".into())
    }
}

fn demo_audius() -> Result<(), String> {
    let mut chain = Chain::new();
    let deployer = chain.new_funded_account();
    let (proxy_spec, logic_spec) = templates::audius_pair();
    let logic = chain
        .install_new(deployer, compile(&logic_spec).unwrap().runtime)
        .map_err(|e| e.to_string())?;
    let proxy = chain
        .install_new(deployer, compile(&proxy_spec).unwrap().runtime)
        .map_err(|e| e.to_string())?;
    let mut admin = [0u8; 20];
    admin[7] = 0x77;
    chain.set_storage(proxy, U256::ZERO, U256::from(Address::from(admin)));
    chain.set_storage(proxy, U256::ONE, U256::from(logic));

    let report = StorageCollisionDetector::new()
        .check_pair(&chain, proxy, logic)
        .expect("in-memory chain reads are infallible");
    for collision in &report.collisions {
        println!("STORAGE COLLISION: {collision}");
    }
    let attacker = chain.new_funded_account();
    let r = chain.transact(
        attacker,
        proxy,
        selector("initialize()").to_vec(),
        U256::ZERO,
    );
    println!("attacker initialize(): success = {}", r.is_success());
    let owner = chain.transact(attacker, proxy, selector("owner()").to_vec(), U256::ZERO);
    println!(
        "owner is now: {}",
        Address::from_word(U256::from_be_slice(&owner.output))
    );
    if report.has_exploitable() && r.is_success() {
        println!("verdict: exploitable storage collision — ownership seized");
        Ok(())
    } else {
        Err("expected an exploitable collision".into())
    }
}

/// Options of `proxion serve`.
struct ServeOpts {
    contracts: usize,
    seed: u64,
    port: u16,
    workers: usize,
    queue: usize,
    max_conns: usize,
    follow: bool,
    telemetry: bool,
    state_dir: Option<std::path::PathBuf>,
    checkpoint_blocks: u64,
}

impl ServeOpts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = ServeOpts {
            contracts: 200,
            seed: 0x5eed,
            port: 0,
            workers: 4,
            queue: 64,
            max_conns: 4096,
            follow: true,
            telemetry: false,
            state_dir: None,
            checkpoint_blocks: 64,
        };
        let mut positional = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut flag_value = |name: &str| {
                iter.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--port" => {
                    opts.port = flag_value("--port")?
                        .parse()
                        .map_err(|_| "invalid --port".to_owned())?
                }
                "--workers" => {
                    opts.workers = flag_value("--workers")?
                        .parse()
                        .map_err(|_| "invalid --workers".to_owned())?
                }
                "--queue" => {
                    opts.queue = flag_value("--queue")?
                        .parse()
                        .map_err(|_| "invalid --queue".to_owned())?
                }
                "--max-conns" => {
                    opts.max_conns = flag_value("--max-conns")?
                        .parse()
                        .map_err(|_| "invalid --max-conns".to_owned())?
                }
                "--no-follow" => opts.follow = false,
                "--telemetry" => opts.telemetry = true,
                "--state-dir" => {
                    opts.state_dir = Some(flag_value("--state-dir")?.into());
                }
                "--checkpoint-blocks" => {
                    opts.checkpoint_blocks = flag_value("--checkpoint-blocks")?
                        .parse()
                        .map_err(|_| "invalid --checkpoint-blocks".to_owned())?
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other:?}"));
                }
                _ => positional.push(arg.clone()),
            }
        }
        opts.contracts = parse_or(positional.first(), opts.contracts)?;
        opts.seed = parse_or(positional.get(1), opts.seed)?;
        Ok(opts)
    }
}

/// Generates a landscape and starts the analysis server over it. Shared
/// by `proxion serve` and the integration tests, which need the handle.
fn launch_server(
    opts: &ServeOpts,
) -> Result<(proxion_service::ServerHandle, Arc<RwLock<Chain>>), String> {
    let landscape = Landscape::generate(&LandscapeConfig {
        seed: opts.seed,
        total_contracts: opts.contracts,
    });
    let chain = Arc::new(RwLock::new(landscape.chain));
    let etherscan = Arc::new(RwLock::new(landscape.etherscan));
    let mut pipeline = Pipeline::new(PipelineConfig {
        parallelism: 1,
        resolve_history: true,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    if opts.telemetry {
        pipeline = pipeline.with_telemetry(Arc::new(proxion_telemetry::Telemetry::new(
            proxion_telemetry::TelemetryConfig::default(),
        )));
    }
    let pipeline = Arc::new(pipeline);
    let handle = server::start(
        ServerConfig {
            addr: format!("127.0.0.1:{}", opts.port),
            workers: opts.workers,
            queue_capacity: opts.queue,
            max_connections: opts.max_conns,
            follow_chain: opts.follow,
            state_dir: opts.state_dir.clone(),
            checkpoint_every_blocks: opts.checkpoint_blocks,
            ..ServerConfig::default()
        },
        Arc::clone(&chain),
        etherscan,
        pipeline,
    )
    .map_err(|e| format!("failed to start server: {e}"))?;
    Ok((handle, chain))
}

/// `proxion serve [contracts] [seed] [--port P] [--workers N] [--queue N]
/// [--max-conns N] [--no-follow] [--telemetry] [--state-dir DIR]
/// [--checkpoint-blocks N]`
///
/// Generates a synthetic landscape and serves the analysis over HTTP
/// until SIGINT/SIGTERM (Ctrl-C stops it gracefully). With
/// `--state-dir`, warm analysis state is reloaded on boot, checkpointed
/// to disk as the follower advances, and checkpointed once more during
/// the graceful shutdown.
pub fn serve(args: &[String]) -> Result<(), String> {
    let opts = ServeOpts::parse(args)?;
    println!(
        "generating landscape: {} contracts, seed {:#x}...",
        opts.contracts, opts.seed
    );
    let (handle, _chain) = launch_server(&opts)?;
    println!(
        "proxion-service listening on http://{}",
        handle.local_addr()
    );
    println!("  POST /rpc       methods: proxy_check, proxy_check_batch, logic_history, collisions, replay, contracts, stats, health");
    println!("  GET  /health    liveness");
    println!("  GET  /metrics   Prometheus text format");
    if opts.telemetry {
        println!("  GET  /trace         Chrome-trace JSON (Perfetto)");
        println!("  GET  /trace/folded  flamegraph folded stacks");
    }
    println!(
        "  workers: {}, queue: {}, max conns: {}, follower: {}, telemetry: {}",
        opts.workers,
        opts.queue,
        opts.max_conns,
        if opts.follow { "on" } else { "off" },
        if opts.telemetry { "on" } else { "off" }
    );
    match &opts.state_dir {
        Some(dir) => println!(
            "  persistent state: {} (checkpoint every {} blocks)",
            dir.display(),
            opts.checkpoint_blocks.max(1)
        ),
        None => println!("  persistent state: off (ephemeral; pass --state-dir DIR to enable)"),
    }
    // Park until SIGINT/SIGTERM, then stop the server gracefully so the
    // final state checkpoint runs (docs/OPERATIONS.md "Clean restart").
    // std has no signal API and the no-new-deps rule rules out the
    // `ctrlc` crate, so this registers a libc handler directly; the
    // handler only stores an atomic flag, which is async-signal-safe.
    static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    extern "C" fn request_shutdown(_signum: i32) {
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal` is the POSIX libc call; the handler it installs
    // touches nothing but an atomic flag.
    unsafe {
        signal(2, request_shutdown); // SIGINT (Ctrl-C)
        signal(15, request_shutdown); // SIGTERM
    }
    while !SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    match opts.state_dir {
        Some(_) => println!("shutting down (final checkpoint)..."),
        None => println!("shutting down..."),
    }
    handle.stop();
    Ok(())
}

/// `proxion state <info|compact> <dir> [--json]`
///
/// Offline maintenance for a `proxion-store` state directory. `info`
/// scans every sealed segment and reports per-segment health plus the
/// live entry counts a reload would produce; `compact` rewrites the
/// directory as one deduplicated segment. Run `compact` only while no
/// server is using the directory.
pub fn state(args: &[String]) -> Result<(), String> {
    let (as_json, args) = take_flag(args, "--json");
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or("state needs a subcommand: info or compact")?;
    let dir = std::path::PathBuf::from(args.get(1).ok_or("state needs the state directory path")?);
    match sub {
        "info" => {
            let info = proxion_store::info(&dir)
                .map_err(|e| format!("cannot read state directory: {e}"))?;
            if as_json {
                println!("{}", json::to_json(&info));
                return Ok(());
            }
            println!("state directory: {}", dir.display());
            println!(
                "segments: {} ({} bytes total)",
                info.segments.len(),
                info.bytes_total
            );
            for seg in &info.segments {
                let mut health = String::new();
                if seg.skipped > 0 {
                    health.push_str(&format!(", {} damaged record(s) skipped", seg.skipped));
                }
                if seg.truncated {
                    health.push_str(", truncated tail");
                }
                println!(
                    "  {}  {} bytes, {} records{}",
                    seg.name, seg.bytes, seg.records, health
                );
            }
            println!(
                "records: {} artifact, {} timeline (including superseded duplicates)",
                info.artifact_records, info.timeline_records
            );
            println!(
                "live after replay: {} artifacts, {} timelines",
                info.live_artifacts, info.live_timelines
            );
            println!(
                "index: {}",
                if info.index_consistent {
                    "consistent"
                } else {
                    "drifted (expected after a crash; next checkpoint rewrites it)"
                }
            );
            Ok(())
        }
        "compact" => {
            let report =
                proxion_store::compact(&dir).map_err(|e| format!("compaction failed: {e}"))?;
            if as_json {
                println!("{}", json::to_json(&report));
                return Ok(());
            }
            if report.segments_before == 0 {
                println!(
                    "nothing to compact: no sealed segments in {}",
                    dir.display()
                );
                return Ok(());
            }
            println!(
                "compacted {} segment(s) -> 1: {} records ({} bytes) -> {} records ({} bytes)",
                report.segments_before,
                report.records_before,
                report.bytes_before,
                report.records_after,
                report.bytes_after
            );
            Ok(())
        }
        other => Err(format!(
            "unknown state subcommand {other:?}; expected info or compact"
        )),
    }
}

/// `proxion loadgen <host:port> [connections] [requests-per-connection]
/// [--pipeline DEPTH] [--batch N]`
///
/// Open-loop load: every connection keeps `--pipeline` requests in
/// flight (HTTP/1.1 pipelining); `--batch` packs N addresses into each
/// wire request via `proxy_check_batch`.
pub fn loadgen(args: &[String]) -> Result<(), String> {
    let mut pipeline_depth = 1usize;
    let mut batch_size = 1usize;
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut flag_value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--pipeline" => {
                pipeline_depth = flag_value("--pipeline")?
                    .parse()
                    .map_err(|_| "invalid --pipeline".to_owned())?
            }
            "--batch" => {
                batch_size = flag_value("--batch")?
                    .parse()
                    .map_err(|_| "invalid --batch".to_owned())?
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            _ => positional.push(arg.clone()),
        }
    }
    let addr: std::net::SocketAddr = positional
        .first()
        .ok_or("loadgen needs the server address (host:port)")?
        .parse()
        .map_err(|_| "invalid address; expected host:port".to_owned())?;
    let config = LoadgenConfig {
        connections: parse_or(positional.get(1), 4)?,
        requests_per_connection: parse_or(positional.get(2), 100)?,
        pipeline_depth: pipeline_depth.max(1),
        batch_size: batch_size.max(1),
    };
    let report = service_loadgen::run(addr, &config).map_err(|e| e.to_string())?;
    println!(
        "{} checks ({} ok, {} errors) in {:.2}s — {:.0} checks/s",
        report.ok + report.errors,
        report.ok,
        report.errors,
        report.elapsed_secs,
        report.requests_per_sec
    );
    println!(
        "latency: p50 {}µs, p99 {}µs, p99.9 {}µs ({} conns × depth {} × batch {})",
        report.p50_us,
        report.p99_us,
        report.p999_us,
        config.connections,
        config.pipeline_depth,
        config.batch_size
    );
    Ok(())
}

fn parse_or<T: std::str::FromStr>(arg: Option<&String>, default: T) -> Result<T, String> {
    match arg {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("invalid number {s:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_or_defaults_and_parses() {
        assert_eq!(parse_or::<usize>(None, 7).unwrap(), 7);
        assert_eq!(parse_or::<usize>(Some(&"12".into()), 7).unwrap(), 12);
        assert!(parse_or::<usize>(Some(&"x".into()), 7).is_err());
    }

    #[test]
    fn inspect_rejects_bad_input() {
        assert!(inspect(&[]).is_err());
        assert!(inspect(&["zz".into()]).is_err());
        assert!(inspect(&["".into()]).is_err());
    }

    #[test]
    fn inspect_accepts_minimal_proxy_hex() {
        let code = templates::minimal_proxy_runtime(Address::from_low_u64(7));
        let hex = encode_hex(&code);
        inspect(&[hex]).unwrap();
    }

    #[test]
    fn demos_run_clean() {
        demo(&["honeypot".into()]).unwrap();
        demo(&["audius".into()]).unwrap();
        assert!(demo(&[]).is_err());
    }

    #[test]
    fn accuracy_runs_on_tiny_corpus() {
        accuracy(&["1".into()]).unwrap();
    }

    #[test]
    fn replay_runs_on_exploit_corpus() {
        replay(&[]).unwrap();
        replay(&["--json".into(), "7".into()]).unwrap();
    }

    #[test]
    fn landscape_runs_small() {
        landscape(&["60".into(), "3".into()]).unwrap();
        landscape(&["--json".into(), "30".into(), "3".into()]).unwrap();
    }

    #[test]
    fn inspect_json_mode_runs() {
        let code = templates::minimal_proxy_runtime(Address::from_low_u64(7));
        inspect(&["--json".into(), encode_hex(&code)]).unwrap();
    }

    #[test]
    fn inspect_trace_writes_trace_files() {
        let code = templates::minimal_proxy_runtime(Address::from_low_u64(7));
        let dir = std::env::temp_dir().join("proxion-inspect-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_str = path.to_str().unwrap().to_owned();
        inspect(&["--trace".into(), path_str.clone(), encode_hex(&code)]).unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"cat\":\"emulation\""));
        assert!(std::fs::metadata(format!("{path_str}.folded")).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
        // The flag requires a value.
        assert!(inspect(&["--trace".into()]).is_err());
    }

    #[test]
    fn serve_opts_parse_flags_and_positionals() {
        let opts = ServeOpts::parse(&[
            "50".into(),
            "--port".into(),
            "8080".into(),
            "7".into(),
            "--workers".into(),
            "2".into(),
            "--max-conns".into(),
            "128".into(),
            "--no-follow".into(),
        ])
        .unwrap();
        assert_eq!(opts.contracts, 50);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.port, 8080);
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.max_conns, 128);
        assert!(!opts.follow);
        assert!(ServeOpts::parse(&["--port".into()]).is_err());
        assert!(ServeOpts::parse(&["--max-conns".into()]).is_err());
        assert!(ServeOpts::parse(&["--bogus".into()]).is_err());
    }

    #[test]
    fn serve_opts_parse_state_flags() {
        let opts = ServeOpts::parse(&[
            "--state-dir".into(),
            "/tmp/proxion-state".into(),
            "--checkpoint-blocks".into(),
            "16".into(),
        ])
        .unwrap();
        assert_eq!(
            opts.state_dir.as_deref(),
            Some(std::path::Path::new("/tmp/proxion-state"))
        );
        assert_eq!(opts.checkpoint_blocks, 16);
        assert!(ServeOpts::parse(&["--state-dir".into()]).is_err());
        assert!(ServeOpts::parse(&["--checkpoint-blocks".into(), "x".into()]).is_err());
    }

    #[test]
    fn state_command_reports_and_compacts_a_store() {
        let dir = std::env::temp_dir().join(format!("proxion-cli-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_str().unwrap().to_owned();

        // A missing directory is an error (likely a typo'd path)...
        assert!(state(&["info".into(), dir_arg.clone()]).is_err());

        // ...but an empty one is healthy, and compaction is a no-op.
        std::fs::create_dir_all(&dir).unwrap();
        state(&["info".into(), dir_arg.clone()]).unwrap();
        state(&["compact".into(), dir_arg.clone()]).unwrap();

        // Seal two segments by checkpointing two artifacts separately,
        // then info and compact see them.
        let store = proxion_store::StateStore::open(&dir).unwrap();
        let artifacts = proxion_core::ArtifactStore::new();
        let history = proxion_core::HistoryIndex::new(64);
        artifacts.intern(Arc::new(vec![0x00]));
        store.checkpoint(&artifacts, &history).unwrap();
        artifacts.intern(Arc::new(vec![0x60, 0x00]));
        store.checkpoint(&artifacts, &history).unwrap();

        state(&["info".into(), dir_arg.clone()]).unwrap();
        state(&["--json".into(), "info".into(), dir_arg.clone()]).unwrap();
        state(&["compact".into(), dir_arg.clone()]).unwrap();
        state(&["--json".into(), "compact".into(), dir_arg.clone()]).unwrap();
        let info = proxion_store::info(&dir).unwrap();
        assert_eq!(info.segments.len(), 1);
        assert_eq!(info.live_artifacts, 2);

        // Bad invocations fail cleanly.
        assert!(state(&[]).is_err());
        assert!(state(&["info".into()]).is_err());
        assert!(state(&["frobnicate".into(), dir_arg]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loadgen_command_drives_a_live_server() {
        let opts = ServeOpts::parse(&["40".into(), "9".into(), "--no-follow".into()]).unwrap();
        let (handle, _chain) = launch_server(&opts).unwrap();
        loadgen(&[handle.local_addr().to_string(), "2".into(), "5".into()]).unwrap();
        // Pipelined + batched open-loop mode against the same server.
        loadgen(&[
            handle.local_addr().to_string(),
            "2".into(),
            "4".into(),
            "--pipeline".into(),
            "3".into(),
            "--batch".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(loadgen(&[]).is_err());
        assert!(loadgen(&["not-an-addr".into()]).is_err());
        assert!(loadgen(&["127.0.0.1:1".into(), "--pipeline".into()]).is_err());
        assert!(loadgen(&["127.0.0.1:1".into(), "--frob".into()]).is_err());
        handle.stop();
    }
}
