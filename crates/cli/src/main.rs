//! `proxion` — the command-line interface.
//!
//! ```text
//! proxion inspect [--json] [--trace FILE] <hex>   static bytecode analysis
//! proxion landscape [--json] [N] [seed]           generate + analyze a landscape
//! proxion accuracy [per-kind]                     Table 2 accuracy comparison
//! proxion replay [--json] [seed]                  Table 4 replay confirmation
//! proxion demo <honeypot|audius>                  run an attack reproduction
//! proxion serve [N] [seed] [--telemetry]          run the analysis server
//! proxion state <info|compact> <dir>              inspect/compact a state dir
//! proxion loadgen <host:port> [conns] [reqs] [--pipeline D] [--batch N]
//!                                                 drive load at a server
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("help", &[] as &[String]),
    };
    let result = match command {
        "inspect" => commands::inspect(rest),
        "landscape" => commands::landscape(rest),
        "accuracy" => commands::accuracy(rest),
        "replay" => commands::replay(rest),
        "demo" => commands::demo(rest),
        "serve" => commands::serve(rest),
        "state" => commands::state(rest),
        "loadgen" => commands::loadgen(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; see `proxion help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "proxion — hidden-proxy and collision analysis for EVM bytecode

USAGE:
    proxion inspect [--trace FILE] <hex-file-or-string>
        Disassemble runtime bytecode and report: opcode statistics, the
        DELEGATECALL gate verdict, dispatcher selectors (vs. the naive
        PUSH4 scan), and the recovered storage-access layout. With
        --trace, additionally deploy the bytecode on a scratch chain, run
        the full detection with telemetry enabled, and write a
        Chrome-trace JSON (plus FILE.folded flamegraph stacks).

    proxion landscape [contracts] [seed]
        Generate a synthetic Ethereum landscape (default 1000 contracts)
        and run the full Proxion pipeline over it.

    proxion accuracy [per-kind]
        Generate the labeled collision corpus and print the Table 2
        accuracy comparison (Proxion vs USCHunt vs CRUSH).

    proxion replay [--json] [seed]
        Generate the ground-truth exploit corpus (uninitialized proxy,
        storage-collision upgrade, mined honeypot — each with a benign
        twin) and run the replay engine's execution-backed confirmation
        over every case (the Table 4 severity measurement).

    proxion demo honeypot
    proxion demo audius
        Reproduce the paper's Listing 1 / Listing 2 attacks end to end.

    proxion serve [contracts] [seed] [--port P] [--workers N] [--queue N] [--max-conns N]
                  [--no-follow] [--telemetry] [--state-dir DIR] [--checkpoint-blocks N]
        Generate a landscape and serve the analysis over HTTP/1.1 from an
        epoll reactor (keep-alive multiplexing + request pipelining):
        POST /rpc (JSON-RPC: proxy_check, proxy_check_batch, logic_history,
        collisions, replay, contracts, stats, health), GET /health,
        GET /metrics. A bounded
        request queue answers 503 under overload; the block follower
        analyzes new contracts and proxy upgrades incrementally. With
        --telemetry, per-request span trees and EVM profiles are recorded
        and exported at GET /trace (Chrome-trace JSON for Perfetto),
        GET /trace/folded (flamegraph stacks) and inside GET /metrics.
        With --state-dir, warm state (code artifacts + upgrade timelines)
        is reloaded on boot and checkpointed every N blocks (default 64),
        so a restart skips re-detection and re-bisection.

    proxion state info <dir> [--json]
    proxion state compact <dir> [--json]
        Offline maintenance for a --state-dir directory: `info` reports
        per-segment health (bytes, records, damage, truncation) and the
        live entry counts a reload would produce; `compact` rewrites the
        directory as a single deduplicated segment. Only run compact
        while no server is using the directory.

    proxion loadgen <host:port> [connections] [requests-per-connection] [--pipeline DEPTH] [--batch N]
        Drive open-loop proxy_check load at a running server: each
        connection keeps DEPTH pipelined requests in flight, --batch
        packs N addresses per request (proxy_check_batch). Reports
        checks/s and p50/p99/p99.9 latency.

Add --json to inspect/landscape for machine-readable output.
"
    );
}
