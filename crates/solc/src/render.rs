//! The verified-source view of a compiled contract: ABI, storage layout
//! and a pseudo-Solidity rendering.

use proxion_primitives::{encode_hex, U256};

use crate::layout::StorageLayout;
use crate::model::{ContractSpec, Fallback, FnBody, ImplRef, SlotSpec, StoreValue};

/// One external function as seen in verified source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionAbi {
    /// Function name.
    pub name: String,
    /// Canonical prototype, e.g. `"transfer(address,uint256)"`.
    pub prototype: String,
    /// 4-byte dispatch selector.
    pub selector: [u8; 4],
}

/// One declared storage variable as seen in verified source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceVar {
    /// Variable name.
    pub name: String,
    /// Solidity type name.
    pub type_name: String,
    /// Assigned slot.
    pub slot: U256,
    /// Byte offset within the slot.
    pub offset: usize,
    /// Width in bytes.
    pub width: usize,
}

/// What an explorer (Etherscan) exposes for a verified contract: the ABI
/// surface, the storage layout, and source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// Contract name.
    pub contract_name: String,
    /// External functions.
    pub functions: Vec<FunctionAbi>,
    /// Declared storage variables with their layout.
    pub storage: Vec<SourceVar>,
    /// Pseudo-Solidity source text.
    pub text: String,
}

impl SourceInfo {
    /// Builds the source view from a spec and its computed layout.
    pub fn from_spec(spec: &ContractSpec, layout: &StorageLayout) -> Self {
        let functions = spec
            .functions
            .iter()
            .map(|f| FunctionAbi {
                name: f.name.clone(),
                prototype: f.prototype(),
                selector: f.selector(),
            })
            .collect();
        let storage = spec
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let a = layout.assignment(i);
                SourceVar {
                    name: v.name.clone(),
                    type_name: v.ty.name().to_string(),
                    slot: U256::from(a.slot),
                    offset: a.offset,
                    width: a.width,
                }
            })
            .collect();
        let text = render_solidity(spec);
        SourceInfo {
            contract_name: spec.name.clone(),
            functions,
            storage,
            text,
        }
    }

    /// The selector set (what a Slither-style signature extraction yields).
    pub fn selectors(&self) -> Vec<[u8; 4]> {
        self.functions.iter().map(|f| f.selector).collect()
    }
}

fn render_body(body: &FnBody, spec: &ContractSpec) -> String {
    let var = |i: usize| spec.vars[i].name.clone();
    match body {
        FnBody::ReturnConst(v) => format!("return {v};"),
        FnBody::ReturnVar(i) => format!("return {};", var(*i)),
        FnBody::StoreVar { var: i, value } => {
            let rhs = match value {
                StoreValue::Arg0 => "arg0".to_string(),
                StoreValue::Const(c) => c.to_string(),
                StoreValue::Caller => "msg.sender".to_string(),
            };
            format!("{} = {rhs};", var(*i))
        }
        FnBody::Initialize {
            flag_var,
            owner_var,
        } => format!(
            "require(!{0}); {0} = true; {1} = msg.sender;",
            var(*flag_var),
            var(*owner_var)
        ),
        FnBody::GuardedStore { owner_var, var: i } => format!(
            "require(msg.sender == {}); {} = arg0;",
            var(*owner_var),
            var(*i)
        ),
        FnBody::PayoutEther(amount) => {
            format!("payable(msg.sender).transfer({amount});")
        }
        FnBody::LibraryCall { lib } => format!("{lib}.delegatecall(LIB_INPUT);"),
        FnBody::ExternalCall { target, selector } => format!(
            "{target}.call(abi.encodeWithSelector(0x{}));",
            encode_hex(selector)
        ),
        FnBody::SetImplementation { slot } => {
            format!("sstore({}, arg0);", render_slot(*slot))
        }
        FnBody::StoreVarObfuscated { var: i } => {
            format!("assembly {{ sstore(add({}.slot, 0), arg0) }}", var(*i))
        }
        FnBody::MappingStore { var: i } => format!("{}[msg.sender] = arg0;", var(*i)),
        FnBody::MappingLoad { var: i } => format!("return {}[msg.sender];", var(*i)),
        FnBody::Stop => String::new(),
    }
}

fn render_slot(slot: SlotSpec) -> String {
    match slot {
        SlotSpec::Index(i) => format!("{i}"),
        SlotSpec::Fixed(h) => format!("0x{h:x}"),
    }
}

fn render_impl_ref(impl_ref: ImplRef) -> String {
    match impl_ref {
        ImplRef::Hardcoded(a) => format!("{a}"),
        ImplRef::Slot(s) => format!("sload({})", render_slot(s)),
    }
}

/// Renders the spec as pseudo-Solidity, the text an explorer would show
/// for a verified contract.
fn render_solidity(spec: &ContractSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("contract {} {{\n", spec.name));
    for v in &spec.vars {
        out.push_str(&format!("    {} private {};\n", v.ty.name(), v.name));
    }
    if !spec.vars.is_empty() && !spec.functions.is_empty() {
        out.push('\n');
    }
    for f in &spec.functions {
        let params: Vec<String> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{} arg{i}", p.name()))
            .collect();
        out.push_str(&format!(
            "    function {}({}) external {{ {} }}\n",
            f.name,
            params.join(", "),
            render_body(&f.body, spec)
        ));
    }
    match spec.fallback {
        Fallback::Revert => {}
        Fallback::Accept => out.push_str("    receive() external payable {}\n"),
        Fallback::DelegateForward(r) => out.push_str(&format!(
            "    fallback() external {{ {}.delegatecall(msg.data); }}\n",
            render_impl_ref(r)
        )),
        Fallback::DelegateNoForward(r) => out.push_str(&format!(
            "    fallback() external {{ {}.delegatecall(\"\"); }}\n",
            render_impl_ref(r)
        )),
        Fallback::CallForward(r) => out.push_str(&format!(
            "    fallback() external {{ {}.call(msg.data); }}\n",
            render_impl_ref(r)
        )),
        Fallback::DiamondLookup => out.push_str(
            "    fallback() external { facets[msg.sig].delegatecall(msg.data); }\n",
        ),
        Fallback::BeaconForward(s) => out.push_str(&format!(
            "    fallback() external {{ IBeacon(sload({})).implementation().delegatecall(msg.data); }}\n",
            render_slot(s)
        )),
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Function, StorageVar, VarType};

    #[test]
    fn source_info_carries_abi_and_layout() {
        let spec = ContractSpec::new("Token")
            .with_var(StorageVar::new("owner", VarType::Address))
            .with_var(StorageVar::new("paused", VarType::Bool))
            .with_function(Function::new(
                "transfer",
                vec![VarType::Address, VarType::Uint256],
                FnBody::Stop,
            ));
        let layout = StorageLayout::new(&spec.vars);
        let info = SourceInfo::from_spec(&spec, &layout);
        assert_eq!(info.contract_name, "Token");
        assert_eq!(info.functions[0].prototype, "transfer(address,uint256)");
        assert_eq!(info.functions[0].selector, [0xa9, 0x05, 0x9c, 0xbb]);
        assert_eq!(info.storage[0].slot, U256::ZERO);
        assert_eq!(info.storage[1].offset, 20);
        assert_eq!(info.selectors().len(), 1);
    }

    #[test]
    fn rendered_text_looks_like_solidity() {
        let spec = ContractSpec::new("P")
            .with_var(StorageVar::new("logic", VarType::Address))
            .with_fallback(Fallback::DelegateForward(ImplRef::Slot(SlotSpec::Index(0))));
        let layout = StorageLayout::new(&spec.vars);
        let info = SourceInfo::from_spec(&spec, &layout);
        assert!(info.text.contains("contract P {"));
        assert!(info.text.contains("address private logic;"));
        assert!(info.text.contains("delegatecall(msg.data)"));
    }

    #[test]
    fn initialize_body_renders_require() {
        let spec = ContractSpec::new("L")
            .with_var(StorageVar::new("initialized", VarType::Bool))
            .with_var(StorageVar::new("owner", VarType::Address))
            .with_function(Function::new(
                "initialize",
                vec![],
                FnBody::Initialize {
                    flag_var: 0,
                    owner_var: 1,
                },
            ));
        let layout = StorageLayout::new(&spec.vars);
        let info = SourceInfo::from_spec(&spec, &layout);
        assert!(info.text.contains("require(!initialized)"));
        assert!(info.text.contains("owner = msg.sender"));
    }
}
