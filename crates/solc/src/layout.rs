//! Solidity storage layout: sequential slot assignment with packing.

use crate::model::StorageVar;

/// Where one variable lives in storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAssignment {
    /// Sequential slot index.
    pub slot: u64,
    /// Byte offset within the slot, counted from the least significant
    /// byte (Solidity packs low-to-high).
    pub offset: usize,
    /// Width in bytes.
    pub width: usize,
}

impl SlotAssignment {
    /// Returns `true` if two assignments overlap byte ranges in the same
    /// slot.
    pub fn overlaps(&self, other: &SlotAssignment) -> bool {
        self.slot == other.slot
            && self.offset < other.offset + other.width
            && other.offset < self.offset + self.width
    }
}

/// The computed layout of a contract's declared variables.
///
/// Implements the Solidity rules: variables are assigned to slots in
/// declaration order; consecutive variables share a slot while the next
/// one still fits in the remaining bytes; a variable that does not fit
/// starts a new slot.
///
/// # Examples
///
/// ```
/// use proxion_solc::{StorageLayout, StorageVar, VarType};
///
/// // bool + bool + address pack into slot 0; uint256 takes slot 1.
/// let layout = StorageLayout::new(&[
///     StorageVar::new("initialized", VarType::Bool),
///     StorageVar::new("initializing", VarType::Bool),
///     StorageVar::new("owner", VarType::Address),
///     StorageVar::new("total", VarType::Uint256),
/// ]);
/// assert_eq!(layout.assignment(0).slot, 0);
/// assert_eq!(layout.assignment(1).offset, 1);
/// assert_eq!(layout.assignment(2).offset, 2);
/// assert_eq!(layout.assignment(3).slot, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StorageLayout {
    assignments: Vec<SlotAssignment>,
    slots_used: u64,
}

impl StorageLayout {
    /// Computes the layout for variables in declaration order.
    pub fn new(vars: &[StorageVar]) -> Self {
        let mut assignments = Vec::with_capacity(vars.len());
        let mut slot = 0u64;
        let mut offset = 0usize;
        for var in vars {
            let width = var.ty.width();
            if offset + width > 32 {
                slot += 1;
                offset = 0;
            }
            assignments.push(SlotAssignment {
                slot,
                offset,
                width,
            });
            offset += width;
            if offset == 32 {
                slot += 1;
                offset = 0;
            }
        }
        let slots_used = if offset > 0 { slot + 1 } else { slot };
        StorageLayout {
            assignments,
            slots_used,
        }
    }

    /// The assignment of variable `index` (declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn assignment(&self, index: usize) -> SlotAssignment {
        self.assignments[index]
    }

    /// All assignments, in declaration order.
    pub fn assignments(&self) -> &[SlotAssignment] {
        &self.assignments
    }

    /// Number of sequential slots occupied.
    pub fn slots_used(&self) -> u64 {
        self.slots_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarType;

    fn v(ty: VarType) -> StorageVar {
        StorageVar::new("x", ty)
    }

    #[test]
    fn packing_follows_solidity_rules() {
        let layout = StorageLayout::new(&[
            v(VarType::Bool),    // slot 0, offset 0
            v(VarType::Address), // slot 0, offset 1
            v(VarType::Uint128), // slot 1 (11 bytes left in slot 0 < 16)
            v(VarType::Uint128), // slot 1, offset 16
            v(VarType::Uint8),   // slot 2
        ]);
        let a = layout.assignments();
        assert_eq!((a[0].slot, a[0].offset), (0, 0));
        assert_eq!((a[1].slot, a[1].offset), (0, 1));
        assert_eq!((a[2].slot, a[2].offset), (1, 0));
        assert_eq!((a[3].slot, a[3].offset), (1, 16));
        assert_eq!((a[4].slot, a[4].offset), (2, 0));
        assert_eq!(layout.slots_used(), 3);
    }

    #[test]
    fn full_slot_types_never_pack() {
        let layout = StorageLayout::new(&[v(VarType::Bool), v(VarType::Uint256), v(VarType::Bool)]);
        let a = layout.assignments();
        assert_eq!(a[0].slot, 0);
        assert_eq!(a[1].slot, 1);
        assert_eq!(a[2].slot, 2);
    }

    #[test]
    fn exact_fill_advances_slot() {
        let layout = StorageLayout::new(&[
            v(VarType::Uint128),
            v(VarType::Uint128), // fills slot 0 exactly
            v(VarType::Bool),    // must start slot 1
        ]);
        assert_eq!(layout.assignment(2).slot, 1);
        assert_eq!(layout.assignment(2).offset, 0);
    }

    #[test]
    fn overlap_detection() {
        let a = SlotAssignment {
            slot: 0,
            offset: 0,
            width: 20,
        };
        let b = SlotAssignment {
            slot: 0,
            offset: 0,
            width: 1,
        };
        let c = SlotAssignment {
            slot: 0,
            offset: 20,
            width: 12,
        };
        let d = SlotAssignment {
            slot: 1,
            offset: 0,
            width: 32,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn empty_layout() {
        let layout = StorageLayout::new(&[]);
        assert!(layout.assignments().is_empty());
        assert_eq!(layout.slots_used(), 0);
    }
}
