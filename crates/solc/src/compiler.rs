//! Lowering a [`ContractSpec`] to runtime bytecode.
//!
//! The emitted code follows solc's idioms instruction for instruction:
//! the free-memory-pointer prologue, the `CALLDATALOAD;SHR` selector
//! prelude, `DUP1 PUSH4 EQ PUSH2 JUMPI` dispatcher entries, packed storage
//! accesses through `SHR`/`SHL`/`AND` masks, and the OpenZeppelin
//! fallback-delegatecall shape. The analyses in `proxion-core` are written
//! against real-world compiler output; this backend guarantees the
//! synthetic corpus exercises the same patterns.

use std::collections::BTreeSet;
use std::fmt;

use proxion_asm::{opcode as op, AssembleError, Assembler, Label};
use proxion_primitives::U256;

use crate::layout::{SlotAssignment, StorageLayout};
use crate::model::{
    ContractSpec, DispatcherStyle, Fallback, FnBody, ImplRef, SlotSpec, StoreValue,
};
use crate::render::SourceInfo;

/// The 160-bit address mask used when extracting an address from a slot.
fn address_mask() -> U256 {
    (U256::ONE << 160u32) - U256::ONE
}

/// Error produced by [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A function body referenced a variable index that does not exist.
    UnknownVar {
        /// The function name.
        function: String,
        /// The out-of-range index.
        index: usize,
    },
    /// Two functions dispatch on the same selector.
    DuplicateSelector([u8; 4]),
    /// Label resolution failed (code too large).
    Assemble(AssembleError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownVar { function, index } => {
                write!(f, "function {function} references unknown variable {index}")
            }
            CompileError::DuplicateSelector(sel) => {
                write!(
                    f,
                    "duplicate selector 0x{}",
                    proxion_primitives::encode_hex(sel)
                )
            }
            CompileError::Assemble(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<AssembleError> for CompileError {
    fn from(e: AssembleError) -> Self {
        CompileError::Assemble(e)
    }
}

/// The result of compiling a [`ContractSpec`].
#[derive(Debug, Clone)]
pub struct CompiledContract {
    /// Runtime bytecode (what lives on chain).
    pub runtime: Vec<u8>,
    /// The verified-source view an explorer would expose.
    pub source: SourceInfo,
    /// The storage layout (declaration order).
    pub layout: StorageLayout,
}

impl CompiledContract {
    /// Wraps the runtime in init code that deploys it via `CODECOPY`.
    pub fn init_code(&self) -> Vec<u8> {
        init_code_for(&self.runtime)
    }
}

/// Builds init code that deploys `runtime` (the standard `CODECOPY` +
/// `RETURN` constructor shape).
pub fn init_code_for(runtime: &[u8]) -> Vec<u8> {
    // Layout: PUSH2 len, PUSH2 offset, PUSH0, CODECOPY, PUSH2 len, PUSH0,
    // RETURN, <runtime>. Prefix is 13 bytes.
    const PREFIX: usize = 13;
    let len = runtime.len() as u16;
    let offset = PREFIX as u16;
    let mut code = Vec::with_capacity(PREFIX + runtime.len());
    code.push(op::PUSH2);
    code.extend_from_slice(&len.to_be_bytes());
    code.push(op::PUSH2);
    code.extend_from_slice(&offset.to_be_bytes());
    code.push(op::PUSH0);
    code.push(op::CODECOPY);
    code.push(op::PUSH2);
    code.extend_from_slice(&len.to_be_bytes());
    code.push(op::PUSH0);
    code.push(op::RETURN);
    code.extend_from_slice(runtime);
    code
}

/// Compiles a contract.
///
/// # Errors
///
/// Returns [`CompileError`] on out-of-range variable references, duplicate
/// selectors, or oversized code.
pub fn compile(spec: &ContractSpec) -> Result<CompiledContract, CompileError> {
    let layout = StorageLayout::new(&spec.vars);

    // Validate variable references and selector uniqueness up front.
    let mut seen = BTreeSet::new();
    for function in &spec.functions {
        if !seen.insert(function.selector()) {
            return Err(CompileError::DuplicateSelector(function.selector()));
        }
        for index in referenced_vars(&function.body) {
            if index >= spec.vars.len() {
                return Err(CompileError::UnknownVar {
                    function: function.name.clone(),
                    index,
                });
            }
        }
    }

    let mut asm = Assembler::new();
    let fallback = asm.new_label();
    let body_labels: Vec<Label> = spec.functions.iter().map(|_| asm.new_label()).collect();

    // Prologue: free-memory pointer, then route short call data to the
    // fallback.
    asm.push(U256::from(0x80u64))
        .push(U256::from(0x40u64))
        .op(op::MSTORE);
    asm.push(U256::from(4u64))
        .op(op::CALLDATASIZE)
        .op(op::LT)
        .jumpi_to(fallback);

    if !spec.functions.is_empty() {
        // Selector prelude: shr(224, calldataload(0)).
        asm.op(op::PUSH0)
            .op(op::CALLDATALOAD)
            .push(U256::from(0xe0u64))
            .op(op::SHR);
        emit_dispatcher(&mut asm, spec, &body_labels, fallback);
    } else {
        asm.jump_to(fallback);
    }

    // Fallback.
    asm.label(fallback);
    emit_fallback(&mut asm, spec.fallback);

    // Function bodies.
    for (function, label) in spec.functions.iter().zip(&body_labels) {
        asm.label(*label);
        emit_body(&mut asm, &function.body, &layout);
    }

    // Dead data region: junk PUSH4 constants (naive-extraction bait).
    for junk in &spec.junk_push4 {
        asm.push_bytes(junk).op(op::POP);
    }
    asm.op(op::INVALID);

    let runtime = asm.assemble()?;
    let source = SourceInfo::from_spec(spec, &layout);
    Ok(CompiledContract {
        runtime,
        source,
        layout,
    })
}

fn referenced_vars(body: &FnBody) -> Vec<usize> {
    match body {
        FnBody::ReturnVar(i) | FnBody::MappingStore { var: i } | FnBody::MappingLoad { var: i } => {
            vec![*i]
        }
        FnBody::StoreVar { var, .. } | FnBody::StoreVarObfuscated { var } => vec![*var],
        FnBody::Initialize {
            flag_var,
            owner_var,
        } => vec![*flag_var, *owner_var],
        FnBody::GuardedStore { owner_var, var } => vec![*owner_var, *var],
        _ => Vec::new(),
    }
}

fn emit_dispatcher(
    asm: &mut Assembler,
    spec: &ContractSpec,
    body_labels: &[Label],
    fallback: Label,
) {
    let mut entries: Vec<([u8; 4], Label)> = spec
        .functions
        .iter()
        .zip(body_labels)
        .map(|(f, &l)| (f.selector(), l))
        .collect();

    match spec.dispatcher {
        DispatcherStyle::Linear => {
            for (selector, label) in &entries {
                emit_dispatch_entry(asm, selector, *label);
            }
            // Unmatched selector: fall into the fallback (selector word is
            // left on the stack, as solc does).
            asm.jump_to(fallback);
        }
        DispatcherStyle::BinarySplit => {
            entries.sort_by_key(|(s, _)| *s);
            let pivot_index = entries.len() / 2;
            if entries.len() < 2 {
                for (selector, label) in &entries {
                    emit_dispatch_entry(asm, selector, *label);
                }
                asm.jump_to(fallback);
            } else {
                let upper = asm.new_label();
                let pivot = entries[pivot_index].0;
                // DUP1 PUSH4 pivot GT PUSH2 upper JUMPI — jump when
                // pivot > selector is false... solc compares
                // `gt(selector, pivot)`; with our operand order the pivot
                // is pushed second so GT computes pivot > selector; route
                // the lower half there.
                asm.op(op::DUP1)
                    .push_bytes(&pivot)
                    .op(op::GT)
                    .jumpi_to(upper);
                for (selector, label) in &entries[pivot_index..] {
                    emit_dispatch_entry(asm, selector, *label);
                }
                asm.jump_to(fallback);
                asm.label(upper);
                for (selector, label) in &entries[..pivot_index] {
                    emit_dispatch_entry(asm, selector, *label);
                }
                asm.jump_to(fallback);
            }
        }
    }
}

fn emit_dispatch_entry(asm: &mut Assembler, selector: &[u8; 4], body: Label) {
    asm.op(op::DUP1)
        .push_bytes(selector)
        .op(op::EQ)
        .jumpi_to(body);
}

/// Emits a packed storage read of one variable; leaves the value on the
/// stack.
fn emit_read_var(asm: &mut Assembler, assignment: SlotAssignment) {
    asm.push(U256::from(assignment.slot)).op(op::SLOAD);
    if assignment.offset > 0 {
        asm.push(U256::from(8 * assignment.offset as u64))
            .op(op::SHR);
    }
    if assignment.width < 32 {
        let mask = (U256::ONE << (8 * assignment.width) as u32) - U256::ONE;
        asm.push(mask).op(op::AND);
    }
}

/// Emits a packed storage write of one variable; consumes the value on the
/// stack.
fn emit_write_var(asm: &mut Assembler, assignment: SlotAssignment) {
    if assignment.width < 32 {
        let mask = (U256::ONE << (8 * assignment.width) as u32) - U256::ONE;
        asm.push(mask).op(op::AND);
        if assignment.offset > 0 {
            asm.push(U256::from(8 * assignment.offset as u64))
                .op(op::SHL);
        }
        let clear = !(if assignment.offset > 0 {
            mask << (8 * assignment.offset) as u32
        } else {
            mask
        });
        asm.push(U256::from(assignment.slot)).op(op::SLOAD);
        asm.push(clear).op(op::AND);
        asm.op(op::OR);
    }
    asm.push(U256::from(assignment.slot)).op(op::SSTORE);
}

/// Emits `revert(0, 0)`.
fn emit_revert(asm: &mut Assembler) {
    asm.op(op::PUSH0).op(op::PUSH0).op(op::REVERT);
}

/// Emits `return(0, 32)` of the value currently on the stack.
fn emit_return_word(asm: &mut Assembler) {
    asm.op(op::PUSH0)
        .op(op::MSTORE)
        .push(U256::from(32u64))
        .op(op::PUSH0)
        .op(op::RETURN);
}

/// Pushes the implementation address for a proxy fallback, exactly as the
/// standard proxies do: a `PUSH20` constant for minimal-style proxies, or
/// `SLOAD` + address mask for slot-based proxies.
fn emit_impl_ref(asm: &mut Assembler, impl_ref: ImplRef) {
    match impl_ref {
        ImplRef::Hardcoded(address) => {
            asm.push_bytes(address.as_bytes());
        }
        ImplRef::Slot(slot) => {
            asm.push(slot.to_u256()).op(op::SLOAD);
            asm.push(address_mask()).op(op::AND);
        }
    }
}

fn emit_fallback(asm: &mut Assembler, fallback: Fallback) {
    match fallback {
        Fallback::Revert => emit_revert(asm),
        Fallback::Accept => {
            asm.op(op::STOP);
        }
        Fallback::DelegateForward(impl_ref) => {
            emit_forwarding_delegatecall(asm, impl_ref, ForwardKind::Delegate);
        }
        Fallback::CallForward(impl_ref) => {
            emit_forwarding_delegatecall(asm, impl_ref, ForwardKind::Call);
        }
        Fallback::DelegateNoForward(impl_ref) => {
            // delegatecall(gas, impl, 0, 0, 0, 0) — does not forward the
            // call data.
            asm.op(op::PUSH0).op(op::PUSH0).op(op::PUSH0).op(op::PUSH0);
            emit_impl_ref(asm, impl_ref);
            asm.op(op::GAS)
                .op(op::DELEGATECALL)
                .op(op::POP)
                .op(op::STOP);
        }
        Fallback::DiamondLookup => emit_diamond_fallback(asm),
        Fallback::BeaconForward(slot) => emit_beacon_fallback(asm, slot),
    }
}

/// The beacon fallback: `impl = IBeacon(sload(slot)).implementation();`
/// then the standard forwarding delegatecall to `impl`.
fn emit_beacon_fallback(asm: &mut Assembler, slot: SlotSpec) {
    let revert_label = asm.new_label();
    // beacon = sload(slot) & address_mask
    asm.push(slot.to_u256()).op(op::SLOAD);
    asm.push(address_mask()).op(op::AND);
    // mstore(0, implementation.selector << 224)
    asm.push_bytes(&proxion_primitives::selector("implementation()"))
        .push(U256::from(0xe0u64))
        .op(op::SHL)
        .op(op::PUSH0)
        .op(op::MSTORE);
    // staticcall(gas, beacon, 0, 4, 0, 32)
    asm.push(U256::from(32u64)) // out len
        .op(op::PUSH0) // out off
        .push(U256::from(4u64)) // in len
        .op(op::PUSH0) // in off
        .op(opcode_dup(5)) // beacon
        .op(op::GAS)
        .op(op::STATICCALL);
    asm.op(op::ISZERO).jumpi_to(revert_label);
    // impl = mload(0); drop the beacon below it
    asm.op(op::PUSH0).op(op::MLOAD).op(op::SWAP1).op(op::POP);
    // forward the full call data to impl
    asm.op(op::CALLDATASIZE)
        .op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::CALLDATACOPY);
    asm.op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::CALLDATASIZE)
        .op(op::PUSH0)
        .op(opcode_dup(5))
        .op(op::GAS)
        .op(op::DELEGATECALL);
    asm.op(op::RETURNDATASIZE)
        .op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::RETURNDATACOPY);
    asm.op(op::ISZERO).jumpi_to(revert_label);
    asm.op(op::RETURNDATASIZE).op(op::PUSH0).op(op::RETURN);
    asm.label(revert_label);
    asm.op(op::RETURNDATASIZE).op(op::PUSH0).op(op::REVERT);
}

/// `DUPn` opcode byte (local alias for readability).
fn opcode_dup(n: usize) -> u8 {
    proxion_asm::opcode::dup_op(n)
}

enum ForwardKind {
    Delegate,
    Call,
}

/// The OpenZeppelin proxy fallback:
///
/// ```text
/// calldatacopy(0, 0, calldatasize())
/// let ok := delegatecall(gas(), impl, 0, calldatasize(), 0, 0)
/// returndatacopy(0, 0, returndatasize())
/// switch ok case 0 { revert(0, returndatasize()) }
///           default { return(0, returndatasize()) }
/// ```
fn emit_forwarding_delegatecall(asm: &mut Assembler, impl_ref: ImplRef, kind: ForwardKind) {
    let revert_label = asm.new_label();
    asm.op(op::CALLDATASIZE)
        .op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::CALLDATACOPY);
    asm.op(op::PUSH0) // out len
        .op(op::PUSH0) // out off
        .op(op::CALLDATASIZE) // in len
        .op(op::PUSH0); // in off
    if matches!(kind, ForwardKind::Call) {
        asm.op(op::PUSH0); // value
    }
    emit_impl_ref(asm, impl_ref);
    asm.op(op::GAS);
    asm.op(match kind {
        ForwardKind::Delegate => op::DELEGATECALL,
        ForwardKind::Call => op::CALL,
    });
    asm.op(op::RETURNDATASIZE)
        .op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::RETURNDATACOPY);
    asm.op(op::ISZERO).jumpi_to(revert_label);
    asm.op(op::RETURNDATASIZE).op(op::PUSH0).op(op::RETURN);
    asm.label(revert_label);
    asm.op(op::RETURNDATASIZE).op(op::PUSH0).op(op::REVERT);
}

/// The EIP-2535 diamond fallback: facet lookup keyed by selector.
fn emit_diamond_fallback(asm: &mut Assembler) {
    let revert_label = asm.new_label();
    // sel = shr(224, calldataload(0))
    asm.op(op::PUSH0)
        .op(op::CALLDATALOAD)
        .push(U256::from(0xe0u64))
        .op(op::SHR);
    // facet = sload(keccak256(sel . DIAMOND_SLOT))
    asm.op(op::PUSH0).op(op::MSTORE);
    asm.push(SlotSpec::eip2535_diamond().to_u256())
        .push(U256::from(32u64))
        .op(op::MSTORE);
    asm.push(U256::from(64u64)).op(op::PUSH0).op(op::KECCAK256);
    asm.op(op::SLOAD);
    asm.push(address_mask()).op(op::AND);
    // if facet == 0: revert — unregistered selectors never delegate.
    asm.op(op::DUP1).op(op::ISZERO).jumpi_to(revert_label);
    // forward full call data to the facet
    asm.op(op::CALLDATASIZE)
        .op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::CALLDATACOPY);
    asm.op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::CALLDATASIZE)
        .op(op::PUSH0)
        .op(op::DUP5)
        .op(op::GAS)
        .op(op::DELEGATECALL);
    asm.op(op::RETURNDATASIZE)
        .op(op::PUSH0)
        .op(op::PUSH0)
        .op(op::RETURNDATACOPY);
    asm.op(op::ISZERO).jumpi_to(revert_label);
    asm.op(op::RETURNDATASIZE).op(op::PUSH0).op(op::RETURN);
    asm.label(revert_label);
    emit_revert(asm);
}

fn emit_store_value(asm: &mut Assembler, value: StoreValue) {
    match value {
        StoreValue::Arg0 => {
            asm.push(U256::from(4u64)).op(op::CALLDATALOAD);
        }
        StoreValue::Const(c) => {
            asm.push(c);
        }
        StoreValue::Caller => {
            asm.op(op::CALLER);
        }
    }
}

fn emit_body(asm: &mut Assembler, body: &FnBody, layout: &StorageLayout) {
    match body {
        FnBody::ReturnConst(value) => {
            asm.push(*value);
            emit_return_word(asm);
        }
        FnBody::ReturnVar(index) => {
            emit_read_var(asm, layout.assignment(*index));
            emit_return_word(asm);
        }
        FnBody::StoreVar { var, value } => {
            emit_store_value(asm, *value);
            emit_write_var(asm, layout.assignment(*var));
            asm.op(op::STOP);
        }
        FnBody::Initialize {
            flag_var,
            owner_var,
        } => {
            let ok = asm.new_label();
            emit_read_var(asm, layout.assignment(*flag_var));
            asm.op(op::ISZERO).jumpi_to(ok);
            emit_revert(asm);
            asm.label(ok);
            asm.push(U256::ONE);
            emit_write_var(asm, layout.assignment(*flag_var));
            asm.op(op::CALLER);
            emit_write_var(asm, layout.assignment(*owner_var));
            asm.op(op::STOP);
        }
        FnBody::GuardedStore { owner_var, var } => {
            let ok = asm.new_label();
            emit_read_var(asm, layout.assignment(*owner_var));
            asm.op(op::CALLER).op(op::EQ).jumpi_to(ok);
            emit_revert(asm);
            asm.label(ok);
            asm.push(U256::from(4u64)).op(op::CALLDATALOAD);
            emit_write_var(asm, layout.assignment(*var));
            asm.op(op::STOP);
        }
        FnBody::PayoutEther(amount) => {
            // caller.call{value: amount}("")
            asm.op(op::PUSH0) // out len
                .op(op::PUSH0) // out off
                .op(op::PUSH0) // in len
                .op(op::PUSH0) // in off
                .push(U256::from(*amount))
                .op(op::CALLER)
                .op(op::GAS)
                .op(op::CALL)
                .op(op::POP)
                .op(op::STOP);
        }
        FnBody::LibraryCall { lib } => {
            // Fixed 4-byte input at memory[28..32]; delegatecall outside
            // the fallback — the library pattern Proxion must not flag.
            asm.push_bytes(&[0xd0, 0x9d, 0xe0, 0x8a]) // increment()
                .op(op::PUSH0)
                .op(op::MSTORE);
            asm.op(op::PUSH0) // out len
                .op(op::PUSH0) // out off
                .push(U256::from(4u64)) // in len
                .push(U256::from(28u64)); // in off
            asm.push_bytes(lib.as_bytes());
            asm.op(op::GAS)
                .op(op::DELEGATECALL)
                .op(op::POP)
                .op(op::STOP);
        }
        FnBody::ExternalCall { target, selector } => {
            // mstore(0, sel << 224); target.call(mem[0..4])
            asm.push_bytes(selector)
                .push(U256::from(0xe0u64))
                .op(op::SHL)
                .op(op::PUSH0)
                .op(op::MSTORE);
            asm.op(op::PUSH0) // out len
                .op(op::PUSH0) // out off
                .push(U256::from(4u64)) // in len
                .op(op::PUSH0) // in off
                .op(op::PUSH0); // value
            asm.push_bytes(target.as_bytes());
            asm.op(op::GAS).op(op::CALL).op(op::POP).op(op::STOP);
        }
        FnBody::SetImplementation { slot } => {
            asm.push(U256::from(4u64)).op(op::CALLDATALOAD);
            asm.push(address_mask()).op(op::AND);
            asm.push(slot.to_u256()).op(op::SSTORE).op(op::STOP);
        }
        FnBody::StoreVarObfuscated { var } => {
            // sstore(slot + 0, calldataload(4)) — the ADD makes the slot
            // non-constant to pattern-based slicing.
            asm.push(U256::from(4u64)).op(op::CALLDATALOAD);
            asm.push(U256::from(layout.assignment(*var).slot))
                .op(op::PUSH0)
                .op(op::ADD)
                .op(op::SSTORE)
                .op(op::STOP);
        }
        FnBody::MappingStore { var } => {
            // value = arg0; slot = keccak256(caller ‖ base)
            asm.push(U256::from(4u64)).op(op::CALLDATALOAD);
            emit_mapping_slot(asm, layout.assignment(*var).slot);
            asm.op(op::SSTORE).op(op::STOP);
        }
        FnBody::MappingLoad { var } => {
            emit_mapping_slot(asm, layout.assignment(*var).slot);
            asm.op(op::SLOAD);
            emit_return_word(asm);
        }
        FnBody::Stop => {
            asm.op(op::STOP);
        }
    }
}

/// Computes `keccak256(caller ‖ base_slot)` onto the stack — the Solidity
/// mapping-slot derivation for an address key.
fn emit_mapping_slot(asm: &mut Assembler, base_slot: u64) {
    asm.op(op::CALLER)
        .op(op::PUSH0)
        .op(op::MSTORE)
        .push(U256::from(base_slot))
        .push(U256::from(32u64))
        .op(op::MSTORE)
        .push(U256::from(64u64))
        .op(op::PUSH0)
        .op(op::KECCAK256);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Function, StorageVar, VarType};
    use proxion_primitives::selector;

    fn sel(proto: &str) -> [u8; 4] {
        selector(proto)
    }

    #[test]
    fn compiles_empty_contract() {
        let spec = ContractSpec::new("Empty");
        let compiled = compile(&spec).unwrap();
        assert!(!compiled.runtime.is_empty());
        assert_eq!(compiled.source.contract_name, "Empty");
    }

    #[test]
    fn duplicate_selector_rejected() {
        let spec = ContractSpec::new("Dup")
            .with_function(Function::new("a", vec![], FnBody::Stop).with_selector([1, 2, 3, 4]))
            .with_function(Function::new("b", vec![], FnBody::Stop).with_selector([1, 2, 3, 4]));
        assert!(matches!(
            compile(&spec),
            Err(CompileError::DuplicateSelector([1, 2, 3, 4]))
        ));
    }

    #[test]
    fn unknown_var_rejected() {
        let spec = ContractSpec::new("Bad").with_function(Function::new(
            "f",
            vec![],
            FnBody::ReturnVar(3),
        ));
        assert!(matches!(
            compile(&spec),
            Err(CompileError::UnknownVar { index: 3, .. })
        ));
    }

    #[test]
    fn dispatcher_contains_selectors_as_push4() {
        let spec = ContractSpec::new("T")
            .with_function(Function::new("foo", vec![], FnBody::Stop))
            .with_function(Function::new("bar", vec![VarType::Uint256], FnBody::Stop));
        let compiled = compile(&spec).unwrap();
        let code_hex = proxion_primitives::encode_hex(&compiled.runtime);
        for proto in ["foo()", "bar(uint256)"] {
            let s = proxion_primitives::encode_hex(sel(proto));
            assert!(code_hex.contains(&s), "selector of {proto} not in code");
        }
    }

    #[test]
    fn init_code_prefix_shape() {
        let runtime = vec![op::STOP, op::STOP, op::STOP];
        let init = init_code_for(&runtime);
        assert_eq!(init.len(), 13 + 3);
        assert_eq!(init[0], op::PUSH2);
        assert_eq!(&init[1..3], &[0, 3]);
        assert_eq!(&init[13..], &runtime[..]);
    }

    #[test]
    fn compile_error_display() {
        let e = CompileError::DuplicateSelector([0xaa, 0xbb, 0xcc, 0xdd]);
        assert_eq!(e.to_string(), "duplicate selector 0xaabbccdd");
        let e = CompileError::UnknownVar {
            function: "f".into(),
            index: 9,
        };
        assert!(e.to_string().contains("unknown variable 9"));
    }

    // Execution-level correctness of the generated code is covered by the
    // behaviour tests below, which run the compiled bytecode on the real
    // interpreter via proxion-evm (dev-dependency of this crate's tests
    // lives in the integration suite); here we check structural facts.

    #[test]
    fn junk_push4_lands_in_code() {
        let spec = ContractSpec::new("J").with_junk_push4([0xde, 0xad, 0xbe, 0xef]);
        let compiled = compile(&spec).unwrap();
        let hex = proxion_primitives::encode_hex(&compiled.runtime);
        assert!(hex.contains("63deadbeef"), "PUSH4 junk missing");
    }

    #[test]
    fn storage_vars_produce_sload_with_slot() {
        let spec = ContractSpec::new("S")
            .with_var(StorageVar::new("a", VarType::Uint256))
            .with_var(StorageVar::new("b", VarType::Uint256))
            .with_function(Function::new("getB", vec![], FnBody::ReturnVar(1)));
        let compiled = compile(&spec).unwrap();
        // PUSH1 0x01 SLOAD must appear (slot 1 read).
        let needle = [op::PUSH1, 0x01, op::SLOAD];
        assert!(compiled.runtime.windows(3).any(|w| w == needle));
    }

    #[test]
    fn binary_split_dispatcher_compiles_and_keeps_selectors() {
        let mut spec = ContractSpec::new("Many").with_dispatcher(DispatcherStyle::BinarySplit);
        for i in 0..8 {
            spec = spec.with_function(Function::new(format!("fn{i}"), vec![], FnBody::Stop));
        }
        let compiled = compile(&spec).unwrap();
        let hex = proxion_primitives::encode_hex(&compiled.runtime);
        for i in 0..8 {
            let s = proxion_primitives::encode_hex(sel(&format!("fn{i}()")));
            assert!(
                hex.contains(&s),
                "fn{i} selector missing from split dispatcher"
            );
        }
    }
}
