//! Solidity-lite: a contract model compiled to real EVM bytecode.
//!
//! The Proxion paper analyzes contracts produced by the Solidity/Vyper
//! compilers. Its bytecode-level analyses key on *compiler idioms*: the
//! `PUSH4/EQ/JUMPI` function dispatcher, packed storage accesses through
//! `AND`-masks and shifts, and the canonical fallback-delegatecall shapes
//! of the proxy EIPs. This crate reproduces those idioms: a
//! [`ContractSpec`] describes a contract the way a Solidity source file
//! would (storage variables in declaration order, external functions, a
//! fallback), and [`compile`] lowers it to runtime bytecode that is
//! idiomatic solc output — so the analyses face the same recognition
//! problem they face on mainnet.
//!
//! The compiler also emits [`SourceInfo`] — the function signatures and
//! storage layout a verified-source explorer (Etherscan) would expose —
//! which the source-mode collision detectors and the USCHunt baseline
//! consume.
//!
//! # Examples
//!
//! ```
//! use proxion_solc::{compile, ContractSpec, Function, FnBody, StorageVar, VarType};
//!
//! let spec = ContractSpec::new("Counter")
//!     .with_var(StorageVar::new("count", VarType::Uint256))
//!     .with_function(Function::new("count", vec![], FnBody::ReturnVar(0)));
//! let compiled = compile(&spec).expect("compiles");
//! assert!(!compiled.runtime.is_empty());
//! assert_eq!(compiled.source.functions[0].name, "count");
//! ```

mod compiler;
mod layout;
mod mining;
mod model;
mod render;
pub mod templates;

pub use compiler::{compile, CompileError, CompiledContract};
pub use layout::{SlotAssignment, StorageLayout};
pub use mining::{mine_selector_collision, mining_hash_rate, MinedName};
pub use model::{
    ContractSpec, DispatcherStyle, Fallback, FnBody, Function, ImplRef, SlotSpec, StorageVar,
    StoreValue, VarType,
};
pub use render::{FunctionAbi, SourceInfo, SourceVar};
