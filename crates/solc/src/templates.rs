//! Canonical contract templates: the proxy standards, the collision attack
//! pairs from the paper, and the negative cases every analysis must get
//! right.

use proxion_primitives::{keccak256, selector, Address, U256};

use crate::model::{
    ContractSpec, Fallback, FnBody, Function, ImplRef, SlotSpec, StorageVar, StoreValue, VarType,
};

/// The canonical EIP-1167 minimal-proxy runtime (45 bytes):
/// `363d3d373d3d3d363d73 <logic> 5af43d82803e903d91602b57fd5bf3`.
///
/// # Examples
///
/// ```
/// use proxion_solc::templates::minimal_proxy_runtime;
/// use proxion_primitives::Address;
///
/// let code = minimal_proxy_runtime(Address::from_low_u64(7));
/// assert_eq!(code.len(), 45);
/// assert_eq!(code[0], 0x36); // CALLDATASIZE
/// assert_eq!(code[31], 0xf4); // DELEGATECALL
/// ```
pub fn minimal_proxy_runtime(logic: Address) -> Vec<u8> {
    let mut code = Vec::with_capacity(45);
    code.extend_from_slice(&[0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73]);
    code.extend_from_slice(logic.as_bytes());
    code.extend_from_slice(&[
        0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91, 0x60, 0x2b, 0x57, 0xfd, 0x5b, 0xf3,
    ]);
    code
}

/// Extracts the hard-coded logic address from an EIP-1167 runtime, if the
/// code matches the canonical pattern.
pub fn parse_minimal_proxy(code: &[u8]) -> Option<Address> {
    if code.len() != 45
        || code[..10] != [0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73]
        || code[30..]
            != [
                0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91, 0x60, 0x2b, 0x57, 0xfd, 0x5b,
                0xf3,
            ]
    {
        return None;
    }
    let mut address = [0u8; 20];
    address.copy_from_slice(&code[10..30]);
    Some(Address(address))
}

/// A *dirty* EIP-1167 variant: `prefix` `JUMPDEST` padding bytes before
/// the canonical 45-byte body (whose `JUMPI` target is patched to the
/// shifted offset) and arbitrary `suffix` junk after the terminal
/// `RETURN` — vanity prefixes and metadata trailers, as real deployments
/// carry. The suffix may be garbage (truncated `PUSH` data included); it
/// is unreachable, and neither the disassembler nor the detector gate may
/// be thrown off by it.
///
/// [`parse_minimal_proxy`] deliberately rejects these (they are not the
/// canonical pattern); only the emulation path detects them.
///
/// # Panics
///
/// Panics if `prefix` exceeds 212 bytes (the patched one-byte jump target
/// would overflow).
pub fn dirty_minimal_proxy_runtime(logic: Address, prefix: usize, suffix: &[u8]) -> Vec<u8> {
    assert!(prefix <= 0xff - 0x2b, "jump target must stay one byte");
    let mut code = vec![0x5b; prefix];
    let mut body = minimal_proxy_runtime(logic);
    debug_assert_eq!(body[40], 0x2b, "canonical body jumps to 0x2b");
    body[40] = 0x2b + prefix as u8;
    code.extend_from_slice(&body);
    code.extend_from_slice(suffix);
    code
}

/// A slot-bound proxy with **no setter anywhere**: the fallback reads the
/// implementation address from sequential slot `slot` and forwards, and
/// no function of the contract writes it. The binding is mutable state
/// that no reachable code path can rebind — the `proxy` (but not
/// `upgradeable-proxy`) class of the upgradeability split.
pub fn setterless_slot_proxy(name: &str, slot: u64) -> ContractSpec {
    ContractSpec::new(name).with_fallback(Fallback::DelegateForward(ImplRef::Slot(
        SlotSpec::Index(slot),
    )))
}

/// The storage slot that holds the facet address for `selector` in our
/// EIP-2535 diamond template: `keccak256(pad32(selector) ‖ DIAMOND_SLOT)`.
pub fn diamond_facet_slot(selector: [u8; 4]) -> U256 {
    let mut buf = [0u8; 64];
    // Selector right-aligned in the first word (it is pushed as a
    // 4-byte-shifted-down value by the fallback).
    buf[28..32].copy_from_slice(&selector);
    buf[32..64].copy_from_slice(&SlotSpec::eip2535_diamond().to_u256().to_be_bytes());
    keccak256(buf).to_u256()
}

/// An EIP-1967 transparent-style proxy: implementation address in the
/// standard hashed slot, an `upgradeTo(address)` admin function, and the
/// forwarding fallback.
pub fn eip1967_proxy(name: &str) -> ContractSpec {
    let slot = SlotSpec::eip1967_implementation();
    ContractSpec::new(name)
        .with_function(Function::new(
            "upgradeTo",
            vec![VarType::Address],
            FnBody::SetImplementation { slot },
        ))
        .with_fallback(Fallback::DelegateForward(ImplRef::Slot(slot)))
}

/// An EIP-1822 (UUPS) proxy: *no* functions of its own; the upgrade logic
/// lives in the implementation (see [`eip1822_logic`]).
pub fn eip1822_proxy(name: &str) -> ContractSpec {
    ContractSpec::new(name).with_fallback(Fallback::DelegateForward(ImplRef::Slot(
        SlotSpec::eip1822_proxiable(),
    )))
}

/// A UUPS logic contract: `updateCodeAddress(address)` writes the
/// PROXIABLE slot (in the proxy's context, via delegatecall).
pub fn eip1822_logic(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("value", VarType::Uint256))
        .with_function(Function::new(
            "updateCodeAddress",
            vec![VarType::Address],
            FnBody::SetImplementation {
                slot: SlotSpec::eip1822_proxiable(),
            },
        ))
        .with_function(Function::new("value", vec![], FnBody::ReturnVar(0)))
        .with_function(Function::new(
            "setValue",
            vec![VarType::Uint256],
            FnBody::StoreVar {
                var: 0,
                value: StoreValue::Arg0,
            },
        ))
}

/// The `OwnableDelegateProxy` shape (Wyvern/OpenSea): owner and logic
/// address in sequential slots, the EIP-897 introspection functions, and a
/// forwarding fallback reading slot 1.
pub fn ownable_delegate_proxy(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_var(StorageVar::new("logic", VarType::Address))
        .with_function(Function::new(
            "proxyType",
            vec![],
            FnBody::ReturnConst(U256::from(2u64)),
        ))
        .with_function(Function::new(
            "implementation",
            vec![],
            FnBody::ReturnVar(1),
        ))
        .with_function(Function::new(
            "upgradeabilityOwner",
            vec![],
            FnBody::ReturnVar(0),
        ))
        .with_function(Function::new(
            "upgradeTo",
            vec![VarType::Address],
            FnBody::GuardedStore {
                owner_var: 0,
                var: 1,
            },
        ))
        .with_fallback(Fallback::DelegateForward(ImplRef::Slot(SlotSpec::Index(1))))
}

/// A Wyvern-style logic contract that *also* declares the EIP-897
/// introspection functions — producing the three function collisions the
/// paper attributes to `OwnableDelegateProxy` duplicates (§7.2), plus
/// ordinary business functions.
pub fn wyvern_logic(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_var(StorageVar::new("registry", VarType::Address))
        .with_function(Function::new(
            "proxyType",
            vec![],
            FnBody::ReturnConst(U256::from(2u64)),
        ))
        .with_function(Function::new(
            "implementation",
            vec![],
            FnBody::ReturnVar(1),
        ))
        .with_function(Function::new(
            "upgradeabilityOwner",
            vec![],
            FnBody::ReturnVar(0),
        ))
        .with_function(Function::new(
            "proxy",
            vec![VarType::Address, VarType::Uint256],
            FnBody::Stop,
        ))
        .with_function(Function::new("user", vec![], FnBody::ReturnVar(0)))
}

/// The honeypot pair from the paper's Listing 1.
///
/// The proxy's `impl_LUsXCWD2AKCc()` carries a mined selector equal to the
/// logic's `free_ether_withdrawal()` (`0xdf4a3106`), so a user calling the
/// enticing withdrawal function actually executes the proxy's stealing
/// function.
pub fn honeypot_pair(usdt: Address) -> (ContractSpec, ContractSpec) {
    let bait_selector = selector("free_ether_withdrawal()");
    let proxy = ContractSpec::new("HoneypotProxy")
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_var(StorageVar::new("logic", VarType::Address))
        .with_function(
            Function::new(
                "impl_LUsXCWD2AKCc",
                vec![],
                FnBody::ExternalCall {
                    target: usdt,
                    selector: selector("transfer(address,uint256)"),
                },
            )
            .with_selector(bait_selector),
        )
        .with_fallback(Fallback::DelegateForward(ImplRef::Slot(SlotSpec::Index(1))));
    let logic = ContractSpec::new("HoneypotLogic").with_function(Function::new(
        "free_ether_withdrawal",
        vec![],
        FnBody::PayoutEther(10),
    ));
    (proxy, logic)
}

/// The Audius-style storage-collision pair from the paper's Listing 2.
///
/// Proxy slot 0 holds `owner` (20 bytes); the logic contract's
/// `initialized`/`initializing` booleans live at slot 0 bytes 0–1 and its
/// own `owner` at bytes 2–21. Executing `initialize()` through the proxy
/// lets an attacker whose address has a zero low byte re-initialize and
/// seize ownership — the real-world Audius exploit.
pub fn audius_pair() -> (ContractSpec, ContractSpec) {
    let proxy = ContractSpec::new("AudiusProxy")
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_var(StorageVar::new("logic", VarType::Address))
        .with_function(Function::new(
            "transferProxyOwnership",
            vec![VarType::Address],
            FnBody::GuardedStore {
                owner_var: 0,
                var: 0,
            },
        ))
        .with_fallback(Fallback::DelegateForward(ImplRef::Slot(SlotSpec::Index(1))));
    let logic = ContractSpec::new("AudiusLogic")
        .with_var(StorageVar::new("initialized", VarType::Bool))
        .with_var(StorageVar::new("initializing", VarType::Bool))
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_function(Function::new(
            "initialize",
            vec![],
            FnBody::Initialize {
                flag_var: 0,
                owner_var: 2,
            },
        ))
        .with_function(Function::new("owner", vec![], FnBody::ReturnVar(2)))
        .with_function(Function::new(
            "setGovernance",
            vec![VarType::Address],
            FnBody::GuardedStore {
                owner_var: 2,
                var: 2,
            },
        ));
    (proxy, logic)
}

/// A library-user contract: delegatecalls a library from a *function body*
/// (not the fallback) with fixed input. Has the `DELEGATECALL` opcode but
/// is **not** a proxy; CRUSH-style tools misclassify it (§6.2).
pub fn library_user(name: &str, lib: Address) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("counter", VarType::Uint256))
        .with_function(Function::new(
            "increment",
            vec![],
            FnBody::LibraryCall { lib },
        ))
        .with_function(Function::new("counter", vec![], FnBody::ReturnVar(0)))
}

/// A plain (non-proxy) token-like contract, with a junk `PUSH4` constant
/// as naive-extraction bait.
pub fn plain_token(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_var(StorageVar::new("totalSupply", VarType::Uint256))
        .with_function(Function::new("totalSupply", vec![], FnBody::ReturnVar(1)))
        .with_function(Function::new(
            "mint",
            vec![VarType::Uint256],
            FnBody::GuardedStore {
                owner_var: 0,
                var: 1,
            },
        ))
        .with_function(Function::new("owner", vec![], FnBody::ReturnVar(0)))
        .with_junk_push4([0xca, 0xfe, 0xba, 0xbe])
}

/// An EIP-2535 diamond proxy: per-selector facet lookup in the fallback.
/// Random-selector probing never triggers its delegatecall, so Proxion
/// (faithfully to the paper's §8.1 limitation) misses it.
pub fn diamond_proxy(name: &str) -> ContractSpec {
    ContractSpec::new(name).with_fallback(Fallback::DiamondLookup)
}

/// A custom (non-standard) storage-slot proxy: implementation address in
/// sequential slot `slot`, with an unguarded setter — the "Others" row of
/// the paper's Table 4.
pub fn custom_slot_proxy(name: &str, slot: u64) -> ContractSpec {
    ContractSpec::new(name)
        .with_function(Function::new(
            "setImplementation",
            vec![VarType::Address],
            FnBody::SetImplementation {
                slot: SlotSpec::Index(slot),
            },
        ))
        .with_fallback(Fallback::DelegateForward(ImplRef::Slot(SlotSpec::Index(
            slot,
        ))))
}

/// The EIP-1967 *beacon* slot:
/// `keccak256("eip1967.proxy.beacon") - 1`.
pub fn eip1967_beacon_slot() -> SlotSpec {
    SlotSpec::Fixed(keccak256(b"eip1967.proxy.beacon").to_u256() - U256::ONE)
}

/// A beacon contract: holds the implementation address in slot 0 and
/// exposes `implementation()`.
pub fn beacon(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("implementation", VarType::Address))
        .with_function(Function::new(
            "implementation",
            vec![],
            FnBody::ReturnVar(0),
        ))
        .with_function(Function::new(
            "setImplementation",
            vec![VarType::Address],
            FnBody::StoreVar {
                var: 0,
                value: StoreValue::Arg0,
            },
        ))
}

/// A beacon proxy: resolves the implementation through a beacon contract
/// (two hops), so the delegate target's provenance is *computed* rather
/// than a direct code constant or storage slot.
pub fn beacon_proxy(name: &str) -> ContractSpec {
    ContractSpec::new(name).with_fallback(Fallback::BeaconForward(eip1967_beacon_slot()))
}

/// An ERC-20-like logic contract built on a balances *mapping*: mapping
/// accesses live in the hashed-slot namespace and must never be confused
/// with scalar slots by the storage analysis.
pub fn mapping_token(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("owner", VarType::Address))
        .with_var(StorageVar::new("balances", VarType::Mapping))
        .with_function(Function::new(
            "deposit",
            vec![VarType::Uint256],
            FnBody::MappingStore { var: 1 },
        ))
        .with_function(Function::new(
            "balanceOf",
            vec![],
            FnBody::MappingLoad { var: 1 },
        ))
        .with_function(Function::new("owner", vec![], FnBody::ReturnVar(0)))
}

/// A simple logic/business contract with a configurable name and a couple
/// of functions (the default implementation target in generated pairs).
pub fn simple_logic(name: &str) -> ContractSpec {
    ContractSpec::new(name)
        .with_var(StorageVar::new("value", VarType::Uint256))
        .with_function(Function::new("value", vec![], FnBody::ReturnVar(0)))
        .with_function(Function::new(
            "setValue",
            vec![VarType::Uint256],
            FnBody::StoreVar {
                var: 0,
                value: StoreValue::Arg0,
            },
        ))
}

/// A contract whose fallback delegatecalls **without forwarding** the call
/// data — it must fail Proxion's forwarding check (§4.2).
pub fn non_forwarding_delegator(name: &str, target: Address) -> ContractSpec {
    ContractSpec::new(name).with_fallback(Fallback::DelegateNoForward(ImplRef::Hardcoded(target)))
}

/// A contract whose fallback forwards via plain `CALL` — not a proxy (no
/// storage-context sharing).
pub fn call_forwarder(name: &str, target: Address) -> ContractSpec {
    ContractSpec::new(name).with_fallback(Fallback::CallForward(ImplRef::Hardcoded(target)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::layout::StorageLayout;

    #[test]
    fn minimal_proxy_round_trip() {
        let logic = Address::from_low_u64(0xbeef);
        let code = minimal_proxy_runtime(logic);
        assert_eq!(code.len(), 45);
        assert_eq!(parse_minimal_proxy(&code), Some(logic));
        assert_eq!(parse_minimal_proxy(&code[..44]), None);
        let mut tampered = code.clone();
        tampered[0] = 0x00;
        assert_eq!(parse_minimal_proxy(&tampered), None);
    }

    #[test]
    fn all_templates_compile() {
        let lib = Address::from_low_u64(1);
        let usdt = Address::from_low_u64(2);
        let (hp, hl) = honeypot_pair(usdt);
        let (ap, al) = audius_pair();
        for spec in [
            eip1967_proxy("A"),
            eip1822_proxy("B"),
            eip1822_logic("C"),
            ownable_delegate_proxy("D"),
            wyvern_logic("E"),
            hp,
            hl,
            ap,
            al,
            library_user("F", lib),
            plain_token("G"),
            diamond_proxy("H"),
            custom_slot_proxy("I", 3),
            simple_logic("J"),
            non_forwarding_delegator("K", lib),
            call_forwarder("L", lib),
        ] {
            compile(&spec).unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
        }
    }

    #[test]
    fn honeypot_selectors_collide() {
        let (proxy, logic) = honeypot_pair(Address::from_low_u64(2));
        let ps = proxy.selectors();
        let ls = logic.selectors();
        assert!(ps.contains(&[0xdf, 0x4a, 0x31, 0x06]));
        assert!(ls.contains(&[0xdf, 0x4a, 0x31, 0x06]));
    }

    #[test]
    fn wyvern_pair_has_three_collisions() {
        let proxy = ownable_delegate_proxy("P");
        let logic = wyvern_logic("L");
        let ps = proxy.selectors();
        let collisions: Vec<_> = logic
            .selectors()
            .into_iter()
            .filter(|s| ps.contains(s))
            .collect();
        assert_eq!(collisions.len(), 3);
    }

    #[test]
    fn audius_layouts_overlap_at_slot_zero() {
        let (proxy, logic) = audius_pair();
        let pl = StorageLayout::new(&proxy.vars);
        let ll = StorageLayout::new(&logic.vars);
        // Proxy owner occupies slot 0 bytes 0..20; logic initialized is
        // slot 0 byte 0 — different widths, same bytes.
        assert!(pl.assignment(0).overlaps(&ll.assignment(0)));
        assert_ne!(pl.assignment(0).width, ll.assignment(0).width);
    }

    #[test]
    fn diamond_facet_slot_is_stable() {
        let s1 = diamond_facet_slot([1, 2, 3, 4]);
        let s2 = diamond_facet_slot([1, 2, 3, 4]);
        let s3 = diamond_facet_slot([1, 2, 3, 5]);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }
}
