//! Selector mining — the attack primitive behind honeypot function
//! collisions (paper §2.3).
//!
//! The paper observes that finding a function name whose Keccak-256 prefix
//! matches a victim selector is "remarkably easy": any 4-byte collision
//! needs ~2³² attempts in expectation (the authors hit one for
//! `free_ether_withdrawal()` after ~600M attempts on a laptop). This
//! module implements the miner; the test suite mines short prefixes (so
//! tests stay fast) and the benchmark suite measures the hash rate from
//! which the full-collision time extrapolates.

use proxion_primitives::keccak256;

/// The outcome of a mining run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedName {
    /// The mined function name (no parameter list).
    pub name: String,
    /// The canonical prototype (`name()`).
    pub prototype: String,
    /// Number of candidates hashed before the hit.
    pub attempts: u64,
}

/// Encodes a counter as the candidate-name suffix (base-36, `a-z0-9`).
fn suffix(mut counter: u64) -> String {
    const ALPHABET: &[u8; 36] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let mut out = Vec::new();
    loop {
        out.push(ALPHABET[(counter % 36) as usize]);
        counter /= 36;
        if counter == 0 {
            break;
        }
    }
    out.reverse();
    String::from_utf8(out).expect("ASCII alphabet")
}

/// Mines a zero-argument function name whose selector's first
/// `prefix_len` bytes equal `target`'s, trying at most `max_attempts`
/// candidates of the form `<name_prefix><base36 counter>()`.
///
/// A full collision needs `prefix_len = 4` (expected ~2³² attempts —
/// feasible offline, not in a unit test); tests use 1–2 byte prefixes.
///
/// # Panics
///
/// Panics if `prefix_len` is 0 or greater than 4.
pub fn mine_selector_collision(
    target: [u8; 4],
    name_prefix: &str,
    prefix_len: usize,
    max_attempts: u64,
) -> Option<MinedName> {
    assert!((1..=4).contains(&prefix_len), "prefix_len must be 1..=4");
    for attempt in 0..max_attempts {
        let name = format!("{name_prefix}{}", suffix(attempt));
        let prototype = format!("{name}()");
        let digest = keccak256(prototype.as_bytes());
        if digest.as_bytes()[..prefix_len] == target[..prefix_len] {
            return Some(MinedName {
                name,
                prototype,
                attempts: attempt + 1,
            });
        }
    }
    None
}

/// Measures the raw mining throughput: candidate prototypes hashed per
/// second over a fixed batch (used by the benchmark harness to
/// extrapolate the paper's 600M-attempt figure).
pub fn mining_hash_rate(batch: u64) -> f64 {
    let started = std::time::Instant::now();
    let mut sink = 0u8;
    for attempt in 0..batch {
        let prototype = format!("probe{}()", suffix(attempt));
        sink ^= keccak256(prototype.as_bytes()).as_bytes()[0];
    }
    std::hint::black_box(sink);
    batch as f64 / started.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxion_primitives::selector;

    #[test]
    fn suffix_is_injective_over_small_range() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(suffix(i)), "duplicate suffix at {i}");
        }
        assert_eq!(suffix(0), "a");
        assert_eq!(suffix(35), "9");
        assert_eq!(suffix(36), "ba");
    }

    #[test]
    fn mines_one_byte_prefix_quickly() {
        // One byte: expected ~256 attempts.
        let target = selector("free_ether_withdrawal()");
        let mined = mine_selector_collision(target, "impl_", 1, 100_000)
            .expect("1-byte prefix must be found fast");
        assert_eq!(selector(&mined.prototype)[0], target[0]);
        assert!(mined.attempts <= 100_000);
    }

    #[test]
    fn mines_two_byte_prefix_within_budget() {
        // Two bytes: expected ~65k attempts.
        let target = selector("transfer(address,uint256)");
        let mined = mine_selector_collision(target, "steal_", 2, 2_000_000)
            .expect("2-byte prefix within 2M attempts");
        assert_eq!(&selector(&mined.prototype)[..2], &target[..2]);
    }

    #[test]
    fn exhausted_budget_returns_none() {
        let target = selector("free_ether_withdrawal()");
        // 4-byte collision in 10 attempts: essentially impossible.
        assert_eq!(mine_selector_collision(target, "x", 4, 10), None);
    }

    #[test]
    fn mined_name_reproduces_honeypot_construction() {
        // End-to-end: mine a (short-prefix) collision and build a contract
        // with it, exactly like the paper's attacker does with 4 bytes.
        let victim = selector("free_ether_withdrawal()");
        let mined = mine_selector_collision(victim, "impl_", 1, 100_000).unwrap();
        let spec = crate::ContractSpec::new("Mined").with_function(crate::Function::new(
            mined.name.clone(),
            vec![],
            crate::FnBody::Stop,
        ));
        let compiled = crate::compile(&spec).unwrap();
        assert_eq!(
            compiled.source.functions[0].selector[0], victim[0],
            "deployed dispatcher carries the mined prefix"
        );
    }

    #[test]
    fn hash_rate_is_positive() {
        assert!(mining_hash_rate(1_000) > 0.0);
    }
}
