//! The contract model: variables, functions, fallback behaviour.

use proxion_primitives::{keccak256, selector, Address, U256};

/// An elementary Solidity value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarType {
    /// `bool` — 1 byte.
    Bool,
    /// `uint8` — 1 byte.
    Uint8,
    /// `uint16` — 2 bytes.
    Uint16,
    /// `uint32` — 4 bytes.
    Uint32,
    /// `uint64` — 8 bytes.
    Uint64,
    /// `uint128` — 16 bytes.
    Uint128,
    /// `uint256` — a full slot.
    Uint256,
    /// `address` — 20 bytes.
    Address,
    /// `bytes32` — a full slot.
    Bytes32,
    /// `mapping(address => uint256)` — reserves its declaration slot; the
    /// values live at `keccak256(key ‖ slot)`.
    Mapping,
}

impl VarType {
    /// Storage footprint in bytes, per the Solidity layout rules.
    pub fn width(self) -> usize {
        match self {
            VarType::Bool | VarType::Uint8 => 1,
            VarType::Uint16 => 2,
            VarType::Uint32 => 4,
            VarType::Uint64 => 8,
            VarType::Uint128 => 16,
            VarType::Address => 20,
            VarType::Uint256 | VarType::Bytes32 | VarType::Mapping => 32,
        }
    }

    /// The Solidity type name.
    pub fn name(self) -> &'static str {
        match self {
            VarType::Bool => "bool",
            VarType::Uint8 => "uint8",
            VarType::Uint16 => "uint16",
            VarType::Uint32 => "uint32",
            VarType::Uint64 => "uint64",
            VarType::Uint128 => "uint128",
            VarType::Uint256 => "uint256",
            VarType::Address => "address",
            VarType::Bytes32 => "bytes32",
            VarType::Mapping => "mapping(address => uint256)",
        }
    }

    /// The value mask (`2^(8*width) - 1`).
    pub fn mask(self) -> U256 {
        if self.width() == 32 {
            U256::MAX
        } else {
            (U256::ONE << (8 * self.width()) as u32) - U256::ONE
        }
    }
}

/// A declared storage variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageVar {
    /// Variable name.
    pub name: String,
    /// Value type.
    pub ty: VarType,
}

impl StorageVar {
    /// Creates a variable declaration.
    pub fn new(name: impl Into<String>, ty: VarType) -> Self {
        StorageVar {
            name: name.into(),
            ty,
        }
    }
}

/// Where a storage slot is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSpec {
    /// A sequential slot index (ordinary variables).
    Index(u64),
    /// A fixed 256-bit slot (the hashed slots of EIP-1967/EIP-1822).
    Fixed(U256),
}

impl SlotSpec {
    /// The EIP-1967 implementation slot:
    /// `keccak256("eip1967.proxy.implementation") - 1`.
    pub fn eip1967_implementation() -> Self {
        SlotSpec::Fixed(keccak256(b"eip1967.proxy.implementation").to_u256() - U256::ONE)
    }

    /// The EIP-1822 (UUPS) slot: `keccak256("PROXIABLE")`.
    pub fn eip1822_proxiable() -> Self {
        SlotSpec::Fixed(keccak256(b"PROXIABLE").to_u256())
    }

    /// The EIP-2535 diamond storage base slot:
    /// `keccak256("diamond.standard.diamond.storage")`.
    pub fn eip2535_diamond() -> Self {
        SlotSpec::Fixed(keccak256(b"diamond.standard.diamond.storage").to_u256())
    }

    /// The slot as a 256-bit key.
    pub fn to_u256(self) -> U256 {
        match self {
            SlotSpec::Index(i) => U256::from(i),
            SlotSpec::Fixed(v) => v,
        }
    }
}

/// Where a function body gets the value it stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreValue {
    /// The first call-data argument (`calldataload(4)`).
    Arg0,
    /// A compile-time constant.
    Const(U256),
    /// `msg.sender`.
    Caller,
}

/// What a function does. Bodies are deliberately small — they are the
/// behaviours the collision analyses distinguish, each lowered to the
/// exact instruction idiom solc emits for the same Solidity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnBody {
    /// `return <const>;`
    ReturnConst(U256),
    /// `return <var i>;` — a packed storage read.
    ReturnVar(usize),
    /// `<var i> = <value>;` — a packed storage write.
    StoreVar {
        /// Index into [`ContractSpec::vars`].
        var: usize,
        /// The stored value.
        value: StoreValue,
    },
    /// The (Audius-style) initializer:
    /// `require(!<flag>); <flag> = true; <owner> = msg.sender;`
    Initialize {
        /// Index of the `initialized` boolean.
        flag_var: usize,
        /// Index of the `owner` address.
        owner_var: usize,
    },
    /// `require(msg.sender == <owner>); <var> = arg0;`
    GuardedStore {
        /// Index of the owner variable consulted for access control.
        owner_var: usize,
        /// Index of the variable written.
        var: usize,
    },
    /// `payable(msg.sender).transfer(<amount>)` — honeypot bait.
    PayoutEther(u64),
    /// `Lib.delegatecall(<fixed 4-byte input>)` — an external *library*
    /// call: a delegatecall outside the fallback that does not forward
    /// call data. Library users are exactly what Proxion must NOT flag as
    /// proxies (§2.2).
    LibraryCall {
        /// The library contract.
        lib: Address,
    },
    /// `target.call(abi.encodeWithSignature(...))` — plants a `PUSH4`
    /// selector constant in the body (a dispatcher false-positive bait).
    ExternalCall {
        /// The called contract.
        target: Address,
        /// The encoded selector constant.
        selector: [u8; 4],
    },
    /// `<impl slot> = arg0;` — the upgrade setter of a proxy.
    SetImplementation {
        /// Slot holding the implementation address.
        slot: SlotSpec,
    },
    /// A full-slot store whose slot index is *computed* at runtime
    /// (`slot + 0` through an `ADD`), defeating constant-slot recovery in
    /// slicing-based analyzers — the bytecode shape behind the paper's
    /// storage-collision false negatives.
    StoreVarObfuscated {
        /// Index into [`ContractSpec::vars`] (the write hits the whole
        /// slot of this variable).
        var: usize,
    },
    /// `map[msg.sender] = arg0;` — a mapping write: the slot is
    /// `keccak256(caller ‖ base_slot)`.
    MappingStore {
        /// Index of the mapping variable.
        var: usize,
    },
    /// `return map[msg.sender];` — a mapping read.
    MappingLoad {
        /// Index of the mapping variable.
        var: usize,
    },
    /// Empty body (`{}`).
    Stop,
}

/// An external function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name, e.g. `"transfer"`.
    pub name: String,
    /// Parameter types (determines the canonical prototype).
    pub params: Vec<VarType>,
    /// The body.
    pub body: FnBody,
    /// Overrides the selector instead of hashing the prototype. Models an
    /// attacker-mined name whose Keccak prefix collides with a victim
    /// function (the paper found one for `free_ether_withdrawal()` in 600M
    /// attempts, §2.3); we skip the brute force and declare the outcome.
    pub selector_override: Option<[u8; 4]>,
}

impl Function {
    /// Creates a function.
    pub fn new(name: impl Into<String>, params: Vec<VarType>, body: FnBody) -> Self {
        Function {
            name: name.into(),
            params,
            body,
            selector_override: None,
        }
    }

    /// Sets a mined selector (see [`Function::selector_override`]).
    pub fn with_selector(mut self, selector: [u8; 4]) -> Self {
        self.selector_override = Some(selector);
        self
    }

    /// The canonical prototype string, e.g. `"transfer(address,uint256)"`.
    pub fn prototype(&self) -> String {
        let params: Vec<&str> = self.params.iter().map(|p| p.name()).collect();
        format!("{}({})", self.name, params.join(","))
    }

    /// The 4-byte dispatch selector.
    pub fn selector(&self) -> [u8; 4] {
        self.selector_override
            .unwrap_or_else(|| selector(&self.prototype()))
    }
}

/// What the implementation address of a proxy's fallback delegatecall is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplRef {
    /// Hard-coded in the bytecode (minimal-proxy family).
    Hardcoded(Address),
    /// Loaded from a storage slot (upgradeable proxies).
    Slot(SlotSpec),
}

/// The contract's fallback behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// No fallback: unmatched selectors revert (solc default).
    Revert,
    /// Accept and stop (a payable receive-all).
    Accept,
    /// The proxy fallback: forward the full call data via `DELEGATECALL`
    /// and bubble up the result (the OpenZeppelin shape).
    DelegateForward(ImplRef),
    /// A delegatecall in the fallback that does NOT forward the call data
    /// (fixed empty input) — fails Proxion's forwarding check (§4.2).
    DelegateNoForward(ImplRef),
    /// Forwards call data with a plain `CALL` — not a proxy by
    /// definition (no storage-context sharing).
    CallForward(ImplRef),
    /// The EIP-2535 diamond fallback: look the facet up in a selector →
    /// address mapping rooted at the diamond storage slot; revert for
    /// unregistered selectors.
    DiamondLookup,
    /// The beacon pattern (EIP-1967 §beacon): read a *beacon* contract
    /// address from the slot, `STATICCALL` its `implementation()` getter,
    /// and delegate-forward to the returned address. The implementation
    /// address reaches the `DELEGATECALL` through memory, so provenance
    /// tagging reports it as computed.
    BeaconForward(SlotSpec),
}

/// How the dispatcher is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatcherStyle {
    /// One `DUP1 PUSH4 EQ JUMPI` chain (solc with few functions).
    #[default]
    Linear,
    /// One `GT` pivot splitting two linear halves (solc with many
    /// functions).
    BinarySplit,
}

/// A full contract description — the Solidity-lite "source file".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractSpec {
    /// Contract name.
    pub name: String,
    /// Storage variables in declaration order.
    pub vars: Vec<StorageVar>,
    /// External functions.
    pub functions: Vec<Function>,
    /// Fallback behaviour.
    pub fallback: Fallback,
    /// Dispatcher layout.
    pub dispatcher: DispatcherStyle,
    /// Extra 4-byte constants embedded as dead data (naive-extraction
    /// false-positive bait).
    pub junk_push4: Vec<[u8; 4]>,
}

impl ContractSpec {
    /// Creates an empty contract with a reverting fallback.
    pub fn new(name: impl Into<String>) -> Self {
        ContractSpec {
            name: name.into(),
            vars: Vec::new(),
            functions: Vec::new(),
            fallback: Fallback::Revert,
            dispatcher: DispatcherStyle::Linear,
            junk_push4: Vec::new(),
        }
    }

    /// Appends a storage variable.
    pub fn with_var(mut self, var: StorageVar) -> Self {
        self.vars.push(var);
        self
    }

    /// Appends a function.
    pub fn with_function(mut self, function: Function) -> Self {
        self.functions.push(function);
        self
    }

    /// Sets the fallback.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// Sets the dispatcher style.
    pub fn with_dispatcher(mut self, dispatcher: DispatcherStyle) -> Self {
        self.dispatcher = dispatcher;
        self
    }

    /// Adds a junk 4-byte constant.
    pub fn with_junk_push4(mut self, junk: [u8; 4]) -> Self {
        self.junk_push4.push(junk);
        self
    }

    /// The selectors of all declared functions.
    pub fn selectors(&self) -> Vec<[u8; 4]> {
        self.functions.iter().map(Function::selector).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_type_widths_and_masks() {
        assert_eq!(VarType::Bool.width(), 1);
        assert_eq!(VarType::Address.width(), 20);
        assert_eq!(VarType::Uint256.width(), 32);
        assert_eq!(VarType::Bool.mask(), U256::from(0xffu64));
        assert_eq!(VarType::Uint256.mask(), U256::MAX);
        assert_eq!(VarType::Address.mask(), (U256::ONE << 160u32) - U256::ONE);
    }

    #[test]
    fn prototype_and_selector() {
        let f = Function::new(
            "transfer",
            vec![VarType::Address, VarType::Uint256],
            FnBody::Stop,
        );
        assert_eq!(f.prototype(), "transfer(address,uint256)");
        assert_eq!(f.selector(), [0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn paper_example_selector() {
        // The paper's running example (Listing 1): the selector of
        // free_ether_withdrawal() is 0xdf4a3106.
        let f = Function::new("free_ether_withdrawal", vec![], FnBody::Stop);
        assert_eq!(f.selector(), [0xdf, 0x4a, 0x31, 0x06]);
    }

    #[test]
    fn selector_override_wins() {
        let f = Function::new("impl_LUsXCWD2AKCc", vec![], FnBody::Stop)
            .with_selector([0xdf, 0x4a, 0x31, 0x06]);
        assert_eq!(f.selector(), [0xdf, 0x4a, 0x31, 0x06]);
    }

    #[test]
    fn standard_slots() {
        assert_eq!(
            format!("{:x}", SlotSpec::eip1967_implementation().to_u256()),
            "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc"
        );
        assert_eq!(
            format!("{:x}", SlotSpec::eip1822_proxiable().to_u256()),
            "c5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7"
        );
        assert_eq!(SlotSpec::Index(3).to_u256(), U256::from(3u64));
    }

    #[test]
    fn spec_builder() {
        let spec = ContractSpec::new("T")
            .with_var(StorageVar::new("a", VarType::Bool))
            .with_function(Function::new("f", vec![], FnBody::Stop))
            .with_fallback(Fallback::Accept)
            .with_dispatcher(DispatcherStyle::BinarySplit)
            .with_junk_push4([1, 2, 3, 4]);
        assert_eq!(spec.vars.len(), 1);
        assert_eq!(spec.selectors().len(), 1);
        assert_eq!(spec.fallback, Fallback::Accept);
        assert_eq!(spec.junk_push4.len(), 1);
    }
}
