//! Property-based tests: storage-layout invariants and the structural
//! relationship between specs and their compiled bytecode.

use proptest::prelude::*;
use proxion_primitives::U256;
use proxion_solc::{
    compile, ContractSpec, DispatcherStyle, Fallback, FnBody, Function, ImplRef, SlotSpec,
    StorageLayout, StorageVar, VarType,
};

fn var_type() -> impl Strategy<Value = VarType> {
    prop_oneof![
        Just(VarType::Bool),
        Just(VarType::Uint8),
        Just(VarType::Uint16),
        Just(VarType::Uint32),
        Just(VarType::Uint64),
        Just(VarType::Uint128),
        Just(VarType::Uint256),
        Just(VarType::Address),
        Just(VarType::Bytes32),
    ]
}

fn vars(max: usize) -> impl Strategy<Value = Vec<StorageVar>> {
    proptest::collection::vec(var_type(), 0..max).prop_map(|types| {
        types
            .into_iter()
            .enumerate()
            .map(|(i, ty)| StorageVar::new(format!("v{i}"), ty))
            .collect()
    })
}

proptest! {
    #[test]
    fn layout_never_overlaps(vars in vars(24)) {
        let layout = StorageLayout::new(&vars);
        let assignments = layout.assignments();
        for (i, a) in assignments.iter().enumerate() {
            // Fits within its slot.
            prop_assert!(a.offset + a.width <= 32, "var {i} spills its slot");
            for (j, b) in assignments.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.overlaps(b), "vars {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn layout_is_declaration_ordered(vars in vars(24)) {
        let layout = StorageLayout::new(&vars);
        let assignments = layout.assignments();
        for pair in assignments.windows(2) {
            let earlier = (pair[0].slot, pair[0].offset);
            let later = (pair[1].slot, pair[1].offset);
            prop_assert!(earlier < later, "layout order must follow declaration order");
        }
        if let Some(last) = assignments.last() {
            prop_assert!(layout.slots_used() >= last.slot + 1);
        }
    }

    #[test]
    fn layout_packs_tightly(vars in vars(24)) {
        // Solidity invariant: a variable starts a new slot only if it
        // would not fit in the remaining bytes of the previous one.
        let layout = StorageLayout::new(&vars);
        let assignments = layout.assignments();
        for pair in assignments.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.slot > a.slot {
                prop_assert!(
                    a.offset + a.width + b.width > 32,
                    "var moved to a new slot although it fit: {a:?} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn compiled_selectors_are_recoverable(count in 1usize..12, split in any::<bool>()) {
        // Every declared function's selector must be recoverable from the
        // compiled dispatcher, and nothing else — for both dispatcher
        // layouts. This is the core soundness property behind Proxion's
        // bytecode-mode function-collision detection.
        let mut spec = ContractSpec::new("P").with_dispatcher(if split {
            DispatcherStyle::BinarySplit
        } else {
            DispatcherStyle::Linear
        });
        for i in 0..count {
            spec = spec.with_function(Function::new(format!("fn{i}"), vec![], FnBody::Stop));
        }
        let compiled = compile(&spec).unwrap();
        let disasm = proxion_disasm::Disassembly::new(&compiled.runtime);
        let recovered = proxion_disasm::extract_dispatcher_selectors(&disasm).selectors;
        let declared: std::collections::BTreeSet<[u8; 4]> =
            spec.selectors().into_iter().collect();
        prop_assert_eq!(recovered, declared);
    }

    #[test]
    fn junk_push4_never_recovered_as_selector(junk in any::<[u8; 4]>()) {
        let spec = ContractSpec::new("J")
            .with_function(Function::new("real", vec![], FnBody::Stop))
            .with_junk_push4(junk);
        prop_assume!(junk != spec.functions[0].selector());
        let compiled = compile(&spec).unwrap();
        let disasm = proxion_disasm::Disassembly::new(&compiled.runtime);
        let recovered = proxion_disasm::extract_dispatcher_selectors(&disasm).selectors;
        prop_assert!(!recovered.contains(&junk));
        // ... although the naive extraction does see it (the §3.1 trap).
        let naive = proxion_disasm::naive_push4_selectors(&disasm);
        prop_assert!(naive.contains(&junk));
    }

    #[test]
    fn compilation_is_deterministic(count in 0usize..6, slot in 0u64..4) {
        let mut spec = ContractSpec::new("D")
            .with_var(StorageVar::new("a", VarType::Address))
            .with_fallback(Fallback::DelegateForward(ImplRef::Slot(SlotSpec::Index(slot))));
        for i in 0..count {
            spec = spec.with_function(Function::new(
                format!("f{i}"),
                vec![VarType::Uint256],
                FnBody::ReturnConst(U256::from(i)),
            ));
        }
        let first = compile(&spec).unwrap();
        let second = compile(&spec).unwrap();
        prop_assert_eq!(first.runtime, second.runtime);
        prop_assert_eq!(first.source, second.source);
    }

    #[test]
    fn source_layout_matches_compiled_layout(vars in vars(12)) {
        let mut spec = ContractSpec::new("S");
        for v in &vars {
            spec = spec.with_var(v.clone());
        }
        let compiled = compile(&spec).unwrap();
        prop_assert_eq!(compiled.source.storage.len(), vars.len());
        for (i, sv) in compiled.source.storage.iter().enumerate() {
            let a = compiled.layout.assignment(i);
            prop_assert_eq!(sv.slot, U256::from(a.slot));
            prop_assert_eq!(sv.offset, a.offset);
            prop_assert_eq!(sv.width, a.width);
        }
    }
}
