//! Property-based tests for the state store: encode/decode round-trips
//! and scan robustness under arbitrary corruption.

use proptest::prelude::*;
use proxion_primitives::{keccak256, Address, B256, U256};
use proxion_store::format::{
    self, decode_payload, encode_artifact, encode_timeline, write_header, write_record, Record,
    KIND_ARTIFACT, KIND_TIMELINE,
};
use proxion_store::segment::scan_segment;

/// Arbitrary bytecode blobs (empty allowed — empty code is legal).
fn code_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

/// Arbitrary *valid* timelines: strictly increasing blocks, consecutive
/// values distinct, watermark at or past the last point.
fn timeline_strategy() -> impl Strategy<Value = (Address, U256, Option<u64>, u64, Vec<(u64, U256)>)>
{
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((1u64..1000, any::<u8>()), 0..12),
        0u64..1000,
        any::<u64>(),
    )
        .prop_map(|(proxy_seed, slot_seed, raw_points, slack, probes)| {
            let mut block = 0u64;
            let mut points: Vec<(u64, U256)> = Vec::new();
            for (step, value) in raw_points {
                block += step;
                let value = U256::from(value as u64);
                if points.last().map(|&(_, v)| v) == Some(value) {
                    continue;
                }
                points.push((block, value));
            }
            let resolved_to = points.last().map(|&(b, _)| b + slack);
            (
                Address::from_low_u64(proxy_seed),
                U256::from(slot_seed),
                resolved_to,
                probes,
                points,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn artifact_payloads_round_trip(code in code_strategy()) {
        let hash = keccak256(&code);
        let payload = encode_artifact(hash, &code);
        let decoded = decode_payload(KIND_ARTIFACT, &payload).unwrap().unwrap();
        prop_assert_eq!(decoded, Record::Artifact { code_hash: hash, code });
    }

    #[test]
    fn timeline_payloads_round_trip(
        (proxy, slot, resolved_to, probes, points) in timeline_strategy()
    ) {
        let payload = encode_timeline(proxy, slot, resolved_to, probes, &points);
        let decoded = decode_payload(KIND_TIMELINE, &payload).unwrap().unwrap();
        prop_assert_eq!(decoded, Record::Timeline { proxy, slot, resolved_to, probes, points });
    }

    #[test]
    fn scan_never_panics_and_never_invents_records(
        codes in proptest::collection::vec(code_strategy(), 0..6),
        corrupt_at in any::<prop::sample::Index>(),
        corrupt_mask in 1u8..=255,
        truncate_to in any::<prop::sample::Index>(),
    ) {
        // Build a clean segment, then corrupt one byte and truncate it at
        // an arbitrary point. The scan must terminate, never panic, and
        // return at most the records that were written.
        let mut buf = Vec::new();
        write_header(&mut buf);
        for code in &codes {
            let payload = encode_artifact(keccak256(code), code);
            write_record(&mut buf, KIND_ARTIFACT, &payload);
        }
        let written = codes.len();

        if !buf.is_empty() {
            let at = corrupt_at.index(buf.len());
            buf[at] ^= corrupt_mask;
            let keep = truncate_to.index(buf.len() + 1);
            buf.truncate(keep);
        }
        let result = scan_segment(&buf);
        prop_assert!(result.records.len() <= written);
        // Every surviving record still passes content verification.
        for record in &result.records {
            if let Record::Artifact { code_hash, code } = record {
                // CRC collisions are possible in principle; hash check is
                // the authoritative gate, mirroring what load() enforces.
                if keccak256(code) != *code_hash {
                    prop_assert!(format::check_header(&buf).is_ok());
                }
            }
        }
    }

    #[test]
    fn segment_of_mixed_records_replays_in_order(
        codes in proptest::collection::vec(code_strategy(), 1..4),
        timelines in proptest::collection::vec(timeline_strategy(), 1..4),
    ) {
        let mut buf = Vec::new();
        write_header(&mut buf);
        for code in &codes {
            write_record(&mut buf, KIND_ARTIFACT, &encode_artifact(keccak256(code), code));
        }
        for (proxy, slot, resolved_to, probes, points) in &timelines {
            let payload = encode_timeline(*proxy, *slot, *resolved_to, *probes, points);
            write_record(&mut buf, KIND_TIMELINE, &payload);
        }
        let result = scan_segment(&buf);
        prop_assert_eq!(result.skipped, 0);
        prop_assert_eq!(result.records.len(), codes.len() + timelines.len());
        // Order is preserved: artifacts first, then timelines.
        for (i, record) in result.records.iter().enumerate() {
            match record {
                Record::Artifact { .. } => prop_assert!(i < codes.len()),
                Record::Timeline { .. } => prop_assert!(i >= codes.len()),
            }
        }
    }
}
