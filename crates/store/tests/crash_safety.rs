//! Crash-safety and corruption-tolerance tests for the state store.
//!
//! Each test builds real warm state against the in-memory chain, persists
//! it, damages the directory the way a crash or disk fault would, and
//! asserts the reload degrades to a *partial warm state with exact error
//! accounting* — never a panic, never silent data loss beyond the damaged
//! records themselves.

use std::fs;
use std::path::PathBuf;

use proxion_asm::opcode as op;
use proxion_chain::{Chain, CountingSource};
use proxion_core::{ArtifactStore, HistoryIndex};
use proxion_primitives::{keccak256, Address, U256};
use proxion_store::{compact, format, info, segment, StateStore};

/// A fresh scratch directory under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("proxion-store-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Builds a chain with `proxies` upgradeable contracts, each upgraded
/// `upgrades` times with `quiet` filler blocks between events.
fn build_chain(proxies: usize, upgrades: u64, quiet: u64) -> (Chain, Vec<Address>) {
    let mut chain = Chain::new();
    let me = chain.new_funded_account();
    let mut addrs = Vec::new();
    for _ in 0..proxies {
        addrs.push(chain.install_new(me, vec![op::STOP]).unwrap());
    }
    for round in 1..=upgrades {
        for &proxy in &addrs {
            chain.set_storage(proxy, U256::ZERO, U256::from(Address::from_low_u64(round)));
        }
        for _ in 0..quiet {
            chain.set_storage(addrs[0], U256::from(7u64), U256::from(round));
        }
    }
    (chain, addrs)
}

/// Warms `artifacts` + `history` for every proxy and returns total probes.
fn analyze_all(
    chain: &Chain,
    addrs: &[Address],
    artifacts: &ArtifactStore,
    history: &HistoryIndex,
) -> u64 {
    let counted = CountingSource::new(chain);
    let head = chain.head_block();
    for &proxy in addrs {
        let code = proxion_chain::ChainSource::code_at(&counted, proxy).unwrap();
        artifacts.intern(code);
        history
            .extend_to(&counted, proxy, U256::ZERO, head)
            .unwrap();
    }
    counted.counts().total()
}

#[test]
fn warm_reload_issues_ten_times_fewer_probes() {
    // The acceptance criterion: a reload from disk answers the same
    // queries (at a slightly newer head, as after a real restart) with
    // >= 10x fewer ChainSource probes than the cold analysis spent.
    let dir = scratch("warm");
    let (mut chain, addrs) = build_chain(8, 3, 400);

    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    let cold_probes = analyze_all(&chain, &addrs, &artifacts, &history);

    let store = StateStore::open(&dir).unwrap();
    let report = store.checkpoint(&artifacts, &history).unwrap();
    assert!(report.segment.is_some());
    assert_eq!(report.timelines_written, 8);

    // "Restart": fresh in-memory stores, reload, and the chain has moved
    // on a little while we were down.
    for _ in 0..5 {
        chain.set_storage(addrs[0], U256::from(7u64), U256::from(99u64));
    }
    let warm_artifacts = ArtifactStore::new();
    let warm_history = HistoryIndex::default();
    let store2 = StateStore::open(&dir).unwrap();
    let loaded = store2.load(&warm_artifacts, &warm_history).unwrap();
    assert_eq!(loaded.records_skipped, 0);
    assert!(loaded.artifacts_loaded >= 1);
    assert_eq!(loaded.timelines_loaded, 8);

    let counted = CountingSource::new(&chain);
    let head = chain.head_block();
    for &proxy in &addrs {
        // Code is warm: no code_at needed, the artifact store has it.
        warm_history
            .extend_to(&counted, proxy, U256::ZERO, head)
            .unwrap();
    }
    let warm_probes = counted.counts().total();
    assert!(
        warm_probes > 0,
        "the head moved, so the warm path pays its 2-probe extensions"
    );
    assert!(
        cold_probes >= 10 * warm_probes,
        "cold {cold_probes} probes vs warm {warm_probes}: expected >= 10x saving"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_checkpoint_reloads_without_loss() {
    // A kill during a checkpoint leaves a sealed segment from before and
    // a partial `.tmp` from the in-flight write. Reopen must sweep the
    // tmp, reload everything sealed, and hand out the tmp's segment id
    // to the next checkpoint.
    let dir = scratch("kill");
    let (chain, addrs) = build_chain(4, 2, 50);
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    analyze_all(&chain, &addrs, &artifacts, &history);

    let store = StateStore::open(&dir).unwrap();
    store.checkpoint(&artifacts, &history).unwrap();

    // Simulate the kill: an in-flight segment 2 that never got renamed,
    // torn mid-write.
    let tmp = dir.join("state-0000000002.seg.tmp");
    fs::write(&tmp, b"PXST\x01\x00\x00\x00\x01partial").unwrap();

    let warm_artifacts = ArtifactStore::new();
    let warm_history = HistoryIndex::default();
    let store2 = StateStore::open(&dir).unwrap();
    assert!(!tmp.exists(), "reopen sweeps in-flight tmp files");
    let loaded = store2.load(&warm_artifacts, &warm_history).unwrap();
    assert_eq!(loaded.segments, 1, "only the sealed segment is visible");
    assert_eq!(loaded.records_skipped, 0, "nothing sealed was lost");
    assert_eq!(loaded.timelines_loaded, 4);

    // The next checkpoint reuses id 2 and seals cleanly.
    let extra = HistoryIndex::default();
    let t = proxion_core::SlotTimeline::from_parts(
        Address::from_low_u64(0xbeef),
        U256::ZERO,
        vec![(3, U256::ONE)],
        Some(10),
        2,
    )
    .unwrap();
    extra.restore(t);
    let report = store2.checkpoint(&ArtifactStore::new(), &extra).unwrap();
    assert_eq!(report.segment.as_deref(), Some("state-0000000002.seg"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_tail_degrades_to_partial_warm_state() {
    let dir = scratch("truncate");
    let (chain, addrs) = build_chain(3, 1, 30);
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    analyze_all(&chain, &addrs, &artifacts, &history);

    let store = StateStore::open(&dir).unwrap();
    let report = store.checkpoint(&artifacts, &history).unwrap();
    let seg = dir.join(report.segment.unwrap());

    // Tear the last record: drop the final 5 bytes of the file.
    let mut bytes = fs::read(&seg).unwrap();
    let torn_len = bytes.len() - 5;
    bytes.truncate(torn_len);
    fs::write(&seg, &bytes).unwrap();

    let warm_artifacts = ArtifactStore::new();
    let warm_history = HistoryIndex::default();
    let store2 = StateStore::open(&dir).unwrap();
    let loaded = store2.load(&warm_artifacts, &warm_history).unwrap();
    // One artifact record + 3 timelines were written; the tear costs
    // exactly the last record, everything before it survives.
    assert_eq!(loaded.records_skipped, 1);
    assert_eq!(loaded.artifacts_loaded + loaded.timelines_loaded, 3);
    assert_eq!(store2.stats().load_errors_total, 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_skips_exactly_one_record() {
    let dir = scratch("bitflip");
    let (chain, addrs) = build_chain(3, 1, 30);
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    analyze_all(&chain, &addrs, &artifacts, &history);

    let store = StateStore::open(&dir).unwrap();
    let report = store.checkpoint(&artifacts, &history).unwrap();
    let seg = dir.join(report.segment.unwrap());

    // Flip one bit inside the first record's payload (the artifact's
    // stored codehash), which breaks its CRC.
    let mut bytes = fs::read(&seg).unwrap();
    let victim = format::HEADER_LEN + format::FRAME_LEN + 5;
    bytes[victim] ^= 0x01;
    fs::write(&seg, &bytes).unwrap();

    let warm_artifacts = ArtifactStore::new();
    let warm_history = HistoryIndex::default();
    let store2 = StateStore::open(&dir).unwrap();
    let loaded = store2.load(&warm_artifacts, &warm_history).unwrap();
    assert_eq!(
        loaded.records_skipped, 1,
        "exactly the flipped record is lost"
    );
    assert_eq!(
        loaded.timelines_loaded, 3,
        "records after the damage still load"
    );
    assert_eq!(store2.stats().load_errors_total, 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn codehash_mismatch_counts_as_damage() {
    // A record whose CRC is valid but whose claimed codehash does not
    // match its bytes (e.g. written by a buggy producer) must be
    // rejected by the keccak re-verification, not interned under a lie.
    let dir = scratch("hashlie");
    fs::create_dir_all(&dir).unwrap();
    let mut buf = Vec::new();
    format::write_header(&mut buf);
    let honest = format::encode_artifact(keccak256(b"\x60\x00"), b"\x60\x00");
    format::write_record(&mut buf, format::KIND_ARTIFACT, &honest);
    let lying = format::encode_artifact(keccak256(b"different"), b"\x60\x00");
    format::write_record(&mut buf, format::KIND_ARTIFACT, &lying);
    segment::seal_segment(&dir, 1, &buf).unwrap();

    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    let store = StateStore::open(&dir).unwrap();
    let loaded = store.load(&artifacts, &history).unwrap();
    assert_eq!(loaded.artifacts_loaded, 1);
    assert_eq!(loaded.records_skipped, 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn incremental_checkpoints_write_only_whats_new() {
    let dir = scratch("incremental");
    let (mut chain, addrs) = build_chain(2, 1, 20);
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    analyze_all(&chain, &addrs, &artifacts, &history);

    let store = StateStore::open(&dir).unwrap();
    let first = store.checkpoint(&artifacts, &history).unwrap();
    assert!(first.segment.is_some());

    // Nothing changed: the next checkpoint is a no-op — no file, no
    // counter bump.
    let noop = store.checkpoint(&artifacts, &history).unwrap();
    assert_eq!(noop.segment, None);
    assert_eq!(noop.bytes_written, 0);
    assert_eq!(store.stats().checkpoints_total, 1);

    // One timeline moves forward; only it is re-persisted.
    chain.set_storage(addrs[0], U256::ZERO, U256::from(Address::from_low_u64(9)));
    let head = chain.head_block();
    history
        .extend_to(&chain, addrs[0], U256::ZERO, head)
        .unwrap();
    let second = store.checkpoint(&artifacts, &history).unwrap();
    assert_eq!(second.artifacts_written, 0);
    assert_eq!(second.timelines_written, 1);
    assert_eq!(store.stats().checkpoints_total, 2);

    // Replaying both segments yields the fresher timeline.
    let warm_history = HistoryIndex::default();
    let store2 = StateStore::open(&dir).unwrap();
    store2.load(&ArtifactStore::new(), &warm_history).unwrap();
    let resolved: Vec<_> = warm_history
        .snapshot_timelines()
        .into_iter()
        .filter(|t| t.proxy() == addrs[0])
        .collect();
    assert_eq!(resolved.len(), 1);
    assert_eq!(resolved[0].resolved_to(), Some(head));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compact_merges_and_interrupted_compact_is_harmless() {
    let dir = scratch("compact");
    let (mut chain, addrs) = build_chain(3, 2, 40);
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    analyze_all(&chain, &addrs, &artifacts, &history);
    let store = StateStore::open(&dir).unwrap();
    store.checkpoint(&artifacts, &history).unwrap();

    // Grow state and checkpoint twice more so there is redundancy.
    for round in 10..12u64 {
        for &proxy in &addrs {
            chain.set_storage(proxy, U256::ZERO, U256::from(Address::from_low_u64(round)));
        }
        let head = chain.head_block();
        for &proxy in &addrs {
            history.extend_to(&chain, proxy, U256::ZERO, head).unwrap();
        }
        store.checkpoint(&artifacts, &history).unwrap();
    }
    let before = info(&dir).unwrap();
    assert_eq!(before.segments.len(), 3);
    assert!(
        before.timeline_records > before.live_timelines,
        "redundant records exist"
    );

    // Baseline: what a full reload yields pre-compaction.
    let reference = HistoryIndex::default();
    StateStore::open(&dir)
        .unwrap()
        .load(&ArtifactStore::new(), &reference)
        .unwrap();
    let mut expect: Vec<_> = reference
        .snapshot_timelines()
        .iter()
        .map(|t| (t.proxy(), t.resolved_to()))
        .collect();
    expect.sort();

    let report = compact(&dir).unwrap();
    assert_eq!(report.segments_before, 3);
    assert!(report.records_after < report.records_before);
    let after = info(&dir).unwrap();
    assert_eq!(after.segments.len(), 1);
    assert_eq!(after.live_timelines, before.live_timelines);
    assert!(after.index_consistent);

    // Reload after compaction sees the identical live state.
    let compacted = HistoryIndex::default();
    StateStore::open(&dir)
        .unwrap()
        .load(&ArtifactStore::new(), &compacted)
        .unwrap();
    let mut got: Vec<_> = compacted
        .snapshot_timelines()
        .iter()
        .map(|t| (t.proxy(), t.resolved_to()))
        .collect();
    got.sort();
    assert_eq!(got, expect);

    // Interrupted compaction: duplicate the compacted segment under an
    // older id, as if the crash hit after the seal but before the
    // deletes. Last-wins replay must shrug.
    let segs = segment::list_segments(&dir).unwrap();
    let (live_id, live_path) = segs.last().unwrap();
    fs::copy(live_path, dir.join(segment::segment_name(live_id - 1))).unwrap();
    let replayed = HistoryIndex::default();
    let store3 = StateStore::open(&dir).unwrap();
    let loaded = store3.load(&ArtifactStore::new(), &replayed).unwrap();
    assert_eq!(loaded.records_skipped, 0);
    let mut got: Vec<_> = replayed
        .snapshot_timelines()
        .iter()
        .map(|t| (t.proxy(), t.resolved_to()))
        .collect();
    got.sort();
    assert_eq!(got, expect, "duplicated segments change nothing");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn info_reports_segment_health_and_index_drift() {
    let dir = scratch("info");
    let (chain, addrs) = build_chain(2, 1, 20);
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    analyze_all(&chain, &addrs, &artifacts, &history);
    let store = StateStore::open(&dir).unwrap();
    let report = store.checkpoint(&artifacts, &history).unwrap();

    let healthy = info(&dir).unwrap();
    assert_eq!(healthy.segments.len(), 1);
    assert!(healthy.index_consistent);
    assert_eq!(healthy.live_timelines, 2);
    assert_eq!(healthy.bytes_total, store.stats().bytes_on_disk);

    // Damage the segment: info localizes the problem without failing.
    let seg = dir.join(report.segment.unwrap());
    let mut bytes = fs::read(&seg).unwrap();
    let keep = bytes.len() - 3;
    bytes.truncate(keep);
    fs::write(&seg, &bytes).unwrap();
    let damaged = info(&dir).unwrap();
    assert_eq!(damaged.segments[0].skipped, 1);
    assert!(damaged.segments[0].truncated);
    assert!(
        !damaged.index_consistent,
        "byte count drifted from the INDEX"
    );

    let _ = fs::remove_dir_all(&dir);
}
