//! The [`StateStore`]: loading warm state on boot and checkpointing it
//! incrementally while the service runs.
//!
//! One store owns one state directory. Checkpoints are *incremental*:
//! the store remembers what it has already persisted (artifact
//! codehashes; timeline resolution watermarks) and each checkpoint
//! seals a new segment containing only entries that are new or fresher
//! since the last one. Load replays segments oldest-first with
//! last-wins semantics, so duplicate records — e.g. from a compaction
//! interrupted before it could delete old segments — are harmless.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proxion_core::{ArtifactStore, HistoryIndex, SlotTimeline};
use proxion_primitives::{keccak256, Address, B256, U256};
use serde::Serialize;

use crate::format::{self, Record, KIND_ARTIFACT, KIND_TIMELINE};
use crate::segment::{
    self, list_segments, read_segment, seal_segment, segment_name, sweep_tmp_files,
};

/// Name of the advisory index file kept next to the segments.
pub const INDEX_FILE: &str = "INDEX";

/// First line of the index file.
pub const INDEX_HEADER: &str = "pxst-index v1";

/// Counters exposed over the stats RPC and `/metrics`.
///
/// All counters are monotonic for the lifetime of the store except
/// `bytes_on_disk`, which is a gauge (compaction shrinks it).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StoreStats {
    /// Entries (artifacts + timelines) installed into the in-memory
    /// stores by [`StateStore::load`].
    pub loaded_entries: u64,
    /// Checkpoints that sealed a segment. No-op checkpoints (nothing
    /// new to persist) are not counted.
    pub checkpoints_total: u64,
    /// Records skipped during load because they were damaged
    /// (CRC mismatch, truncated tail, codehash mismatch, invariant
    /// violation) plus segments that could not be read at all.
    pub load_errors_total: u64,
    /// Total bytes across sealed segments in the state directory.
    pub bytes_on_disk: u64,
}

/// What one [`StateStore::load`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Artifact records installed (after keccak verification).
    pub artifacts_loaded: u64,
    /// Timeline records installed (after invariant validation).
    pub timelines_loaded: u64,
    /// Damaged records / unreadable segments skipped.
    pub records_skipped: u64,
    /// Records with an unknown kind tag, skipped for forward
    /// compatibility (not counted as errors).
    pub records_unknown: u64,
    /// Sealed segments visited.
    pub segments: u64,
}

/// What one [`StateStore::checkpoint`] call did.
#[derive(Debug, Clone, Default)]
pub struct CheckpointReport {
    /// New artifact records written.
    pub artifacts_written: u64,
    /// New or fresher timeline records written.
    pub timelines_written: u64,
    /// Bytes in the sealed segment (0 for a no-op checkpoint).
    pub bytes_written: u64,
    /// File name of the sealed segment, or `None` if there was nothing
    /// new to persist and no file was created.
    pub segment: Option<String>,
}

struct StoreInner {
    next_segment_id: u64,
    persisted_artifacts: HashSet<B256>,
    /// Highest persisted resolution watermark per timeline key.
    /// `Option` ordering (`None < Some(0)`) decides freshness.
    persisted_timelines: HashMap<(Address, U256), Option<u64>>,
}

/// A handle on one state directory. Cheap to clone behind an [`Arc`];
/// load and checkpoint serialize on an internal lock.
pub struct StateStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    loaded_entries: AtomicU64,
    checkpoints_total: AtomicU64,
    load_errors_total: AtomicU64,
    bytes_on_disk: AtomicU64,
}

impl StateStore {
    /// Opens (creating if needed) the state directory at `dir`.
    ///
    /// Leftover `*.tmp` files from interrupted checkpoints are swept;
    /// sealed segments are left untouched until [`Self::load`].
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Arc<Self>> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        sweep_tmp_files(&dir)?;
        let segments = list_segments(&dir)?;
        let next_segment_id = segments.last().map(|&(id, _)| id + 1).unwrap_or(1);
        let mut bytes = 0u64;
        for (_, path) in &segments {
            bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        }
        let store = StateStore {
            dir,
            inner: Mutex::new(StoreInner {
                next_segment_id,
                persisted_artifacts: HashSet::new(),
                persisted_timelines: HashMap::new(),
            }),
            loaded_entries: AtomicU64::new(0),
            checkpoints_total: AtomicU64::new(0),
            load_errors_total: AtomicU64::new(0),
            bytes_on_disk: AtomicU64::new(bytes),
        };
        Ok(Arc::new(store))
    }

    /// The state directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Replays every sealed segment into `artifacts` and `history`,
    /// oldest segment first, last record wins.
    ///
    /// Damage never panics and never aborts the load: each damaged
    /// record (or unreadable segment) is skipped and counted in
    /// `records_skipped` / `load_errors_total`, and everything
    /// loadable around it still lands. Artifact records are
    /// re-verified against `keccak256(code)` — a record whose hash
    /// does not match its bytes counts as damage.
    pub fn load(
        &self,
        artifacts: &ArtifactStore,
        history: &HistoryIndex,
    ) -> io::Result<LoadReport> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        let mut report = LoadReport::default();
        for (_, path) in list_segments(&self.dir)? {
            report.segments += 1;
            let scan = match read_segment(&path) {
                Ok(scan) => scan,
                Err(_) => {
                    report.records_skipped += 1;
                    continue;
                }
            };
            report.records_skipped += scan.skipped;
            report.records_unknown += scan.unknown;
            for record in scan.records {
                match record {
                    Record::Artifact { code_hash, code } => {
                        if keccak256(&code) != code_hash {
                            report.records_skipped += 1;
                            continue;
                        }
                        artifacts.intern_with_hash(code_hash, Arc::new(code));
                        inner.persisted_artifacts.insert(code_hash);
                        report.artifacts_loaded += 1;
                    }
                    Record::Timeline {
                        proxy,
                        slot,
                        resolved_to,
                        probes,
                        points,
                    } => match SlotTimeline::from_parts(proxy, slot, points, resolved_to, probes) {
                        Ok(timeline) => {
                            history.restore(timeline);
                            let watermark = inner
                                .persisted_timelines
                                .entry((proxy, slot))
                                .or_insert(None);
                            *watermark = (*watermark).max(resolved_to);
                            report.timelines_loaded += 1;
                        }
                        Err(_) => report.records_skipped += 1,
                    },
                }
            }
        }
        self.loaded_entries.fetch_add(
            report.artifacts_loaded + report.timelines_loaded,
            Ordering::Relaxed,
        );
        self.load_errors_total
            .fetch_add(report.records_skipped, Ordering::Relaxed);
        Ok(report)
    }

    /// Seals a new segment with everything new since the last
    /// checkpoint (or load): artifact codes whose hash has not been
    /// persisted yet, and timelines whose resolution watermark is
    /// fresher than the persisted one. Unresolved timelines carry no
    /// coverage and are not persisted.
    ///
    /// If nothing is new, no file is created and the returned report
    /// has `segment: None`. The write is crash-safe (tmp + fsync +
    /// rename + dir fsync); a crash mid-checkpoint loses at most the
    /// in-flight segment, never previously sealed ones.
    pub fn checkpoint(
        &self,
        artifacts: &ArtifactStore,
        history: &HistoryIndex,
    ) -> io::Result<CheckpointReport> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        let mut report = CheckpointReport::default();

        let new_codes: Vec<(B256, Arc<Vec<u8>>)> = artifacts
            .snapshot_codes()
            .into_iter()
            .filter(|(hash, _)| !inner.persisted_artifacts.contains(hash))
            .collect();
        let new_timelines: Vec<SlotTimeline> = history
            .snapshot_timelines()
            .into_iter()
            .filter(|t| {
                t.resolved_to().is_some()
                    && t.resolved_to()
                        > inner
                            .persisted_timelines
                            .get(&(t.proxy(), t.slot()))
                            .copied()
                            .flatten()
            })
            .collect();
        if new_codes.is_empty() && new_timelines.is_empty() {
            return Ok(report);
        }

        let mut buf = Vec::new();
        format::write_header(&mut buf);
        for (hash, code) in &new_codes {
            let payload = format::encode_artifact(*hash, code);
            format::write_record(&mut buf, KIND_ARTIFACT, &payload);
        }
        for timeline in &new_timelines {
            let payload = format::encode_timeline(
                timeline.proxy(),
                timeline.slot(),
                timeline.resolved_to(),
                timeline.probes(),
                timeline.points(),
            );
            format::write_record(&mut buf, KIND_TIMELINE, &payload);
        }

        let id = inner.next_segment_id;
        let bytes = seal_segment(&self.dir, id, &buf)?;
        inner.next_segment_id = id + 1;
        for (hash, _) in &new_codes {
            inner.persisted_artifacts.insert(*hash);
        }
        for timeline in &new_timelines {
            inner
                .persisted_timelines
                .insert((timeline.proxy(), timeline.slot()), timeline.resolved_to());
        }
        drop(inner);

        report.artifacts_written = new_codes.len() as u64;
        report.timelines_written = new_timelines.len() as u64;
        report.bytes_written = bytes;
        report.segment = Some(segment_name(id));
        self.checkpoints_total.fetch_add(1, Ordering::Relaxed);
        self.bytes_on_disk.fetch_add(bytes, Ordering::Relaxed);
        let _ = write_index(&self.dir);
        Ok(report)
    }

    /// Current counter values for metrics and the stats RPC.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loaded_entries: self.loaded_entries.load(Ordering::Relaxed),
            checkpoints_total: self.checkpoints_total.load(Ordering::Relaxed),
            load_errors_total: self.load_errors_total.load(Ordering::Relaxed),
            bytes_on_disk: self.bytes_on_disk.load(Ordering::Relaxed),
        }
    }
}

/// Rewrites the advisory `INDEX` file from the directory listing
/// (tmp + rename, like segments). The index accelerates nothing — it
/// exists so `proxion state info` can detect drift between what a
/// checkpoint last saw and what is on disk now.
pub fn write_index(dir: &Path) -> io::Result<()> {
    let mut body = String::from(INDEX_HEADER);
    body.push('\n');
    for (_, path) in list_segments(dir)? {
        let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        body.push_str(&format!("{name} {bytes}\n"));
    }
    let tmp = dir.join(format!("{INDEX_FILE}{}", segment::TMP_SUFFIX));
    fs::write(&tmp, body.as_bytes())?;
    fs::rename(&tmp, dir.join(INDEX_FILE))?;
    segment::fsync_dir(dir)
}

/// Per-segment findings from [`info`].
#[derive(Debug, Clone, Serialize)]
pub struct SegmentInfo {
    /// Segment file name.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Decodable records.
    pub records: u64,
    /// Damaged records skipped while scanning.
    pub skipped: u64,
    /// True if the segment ends in an unframeable tail.
    pub truncated: bool,
}

/// What [`info`] reports about a state directory.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StoreInfo {
    /// Every sealed segment, ascending by id.
    pub segments: Vec<SegmentInfo>,
    /// Artifact records across all segments (including duplicates).
    pub artifact_records: u64,
    /// Timeline records across all segments (including duplicates).
    pub timeline_records: u64,
    /// Distinct codehashes after last-wins replay.
    pub live_artifacts: u64,
    /// Distinct `(proxy, slot)` keys after last-wins replay.
    pub live_timelines: u64,
    /// Total bytes across sealed segments.
    pub bytes_total: u64,
    /// True if the `INDEX` file matches the directory listing.
    /// Drift is expected after a crash and is not an error.
    pub index_consistent: bool,
}

/// Scans a state directory without mutating it: per-segment health,
/// record totals, live-entry counts, and index consistency.
pub fn info(dir: &Path) -> io::Result<StoreInfo> {
    let mut out = StoreInfo::default();
    let mut live_artifacts: HashSet<B256> = HashSet::new();
    let mut live_timelines: HashSet<(Address, U256)> = HashSet::new();
    let mut index_body = String::from(INDEX_HEADER);
    index_body.push('\n');
    for (_, path) in list_segments(dir)? {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let scan = match read_segment(&path) {
            Ok(scan) => scan,
            Err(_) => {
                out.segments.push(SegmentInfo {
                    name,
                    bytes,
                    records: 0,
                    skipped: 1,
                    truncated: true,
                });
                continue;
            }
        };
        for record in &scan.records {
            match record {
                Record::Artifact { code_hash, .. } => {
                    out.artifact_records += 1;
                    live_artifacts.insert(*code_hash);
                }
                Record::Timeline { proxy, slot, .. } => {
                    out.timeline_records += 1;
                    live_timelines.insert((*proxy, *slot));
                }
            }
        }
        index_body.push_str(&format!("{name} {bytes}\n"));
        out.bytes_total += bytes;
        out.segments.push(SegmentInfo {
            name,
            bytes,
            records: scan.records.len() as u64,
            skipped: scan.skipped,
            truncated: scan.truncated,
        });
    }
    out.live_artifacts = live_artifacts.len() as u64;
    out.live_timelines = live_timelines.len() as u64;
    out.index_consistent = fs::read_to_string(dir.join(INDEX_FILE))
        .map(|body| body == index_body)
        .unwrap_or(out.segments.is_empty());
    Ok(out)
}

/// What [`compact`] did.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CompactReport {
    /// Segments before compaction.
    pub segments_before: u64,
    /// Records before compaction (decodable ones).
    pub records_before: u64,
    /// Records in the single compacted segment.
    pub records_after: u64,
    /// Bytes before compaction.
    pub bytes_before: u64,
    /// Bytes after compaction.
    pub bytes_after: u64,
}

/// Rewrites a state directory as one deduplicated segment.
///
/// Replays every segment with the same last-wins semantics as load,
/// seals the survivors as a single new segment (id = max + 1), then
/// deletes the old segments. Crash-safe: a crash after the seal but
/// before the deletes leaves duplicates, which last-wins replay
/// tolerates; a crash before the seal leaves everything untouched.
/// Run it offline — compacting under a live service races with its
/// checkpoints.
pub fn compact(dir: &Path) -> io::Result<CompactReport> {
    let segments = list_segments(dir)?;
    let mut report = CompactReport {
        segments_before: segments.len() as u64,
        ..Default::default()
    };
    if segments.is_empty() {
        return Ok(report);
    }
    let mut artifacts: HashMap<B256, Vec<u8>> = HashMap::new();
    let mut timelines: HashMap<(Address, U256), SlotTimeline> = HashMap::new();
    for (_, path) in &segments {
        report.bytes_before += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let Ok(scan) = read_segment(path) else {
            continue;
        };
        for record in scan.records {
            report.records_before += 1;
            match record {
                Record::Artifact { code_hash, code } => {
                    if keccak256(&code) == code_hash {
                        artifacts.insert(code_hash, code);
                    }
                }
                Record::Timeline {
                    proxy,
                    slot,
                    resolved_to,
                    probes,
                    points,
                } => {
                    if let Ok(timeline) =
                        SlotTimeline::from_parts(proxy, slot, points, resolved_to, probes)
                    {
                        match timelines.entry((proxy, slot)) {
                            std::collections::hash_map::Entry::Occupied(mut slot_entry) => {
                                if timeline.resolved_to() >= slot_entry.get().resolved_to() {
                                    slot_entry.insert(timeline);
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(slot_entry) => {
                                slot_entry.insert(timeline);
                            }
                        }
                    }
                }
            }
        }
    }

    // Deterministic output order: artifacts by hash, timelines by key.
    let mut artifact_list: Vec<_> = artifacts.into_iter().collect();
    artifact_list.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
    let mut timeline_list: Vec<_> = timelines.into_values().collect();
    timeline_list.sort_by_key(|t| (t.proxy(), t.slot()));

    let mut buf = Vec::new();
    format::write_header(&mut buf);
    for (hash, code) in &artifact_list {
        format::write_record(
            &mut buf,
            KIND_ARTIFACT,
            &format::encode_artifact(*hash, code),
        );
    }
    for timeline in &timeline_list {
        let payload = format::encode_timeline(
            timeline.proxy(),
            timeline.slot(),
            timeline.resolved_to(),
            timeline.probes(),
            timeline.points(),
        );
        format::write_record(&mut buf, KIND_TIMELINE, &payload);
    }
    report.records_after = (artifact_list.len() + timeline_list.len()) as u64;

    let new_id = segments.last().map(|&(id, _)| id + 1).expect("non-empty");
    report.bytes_after = seal_segment(dir, new_id, &buf)?;
    for (_, path) in &segments {
        fs::remove_file(path)?;
    }
    segment::fsync_dir(dir)?;
    write_index(dir)?;
    Ok(report)
}
