//! Byte-level segment format: header, record framing, payload codecs.
//!
//! The normative description of this format lives in
//! `docs/STATE_FORMAT.md`; this module is its executable counterpart.
//! Keep the two in sync — the format is versioned, and readers reject
//! segments whose major version they do not understand.
//!
//! Layout summary (all integers little-endian):
//!
//! ```text
//! segment   := header record*
//! header    := magic "PXST" (4) ‖ version u16 (=1) ‖ reserved u16 (=0)
//! record    := kind u8 ‖ payload_len u32 ‖ crc32 u32 ‖ payload
//! artifact  := codehash [32] ‖ code bytes (payload_len - 32)
//! timeline  := proxy [20] ‖ slot [32] ‖ flags u8 ‖ resolved_to u64
//!              ‖ probes u64 ‖ point_count u32 ‖ (block u64 ‖ value [32])*
//! ```

use proxion_primitives::{Address, B256, U256};

/// Segment magic: ASCII `PXST` ("ProXion STate").
pub const MAGIC: [u8; 4] = *b"PXST";

/// Current format version. Bump on any incompatible layout change.
pub const FORMAT_VERSION: u16 = 1;

/// Size in bytes of the segment header (`magic ‖ version ‖ reserved`).
pub const HEADER_LEN: usize = 8;

/// Size in bytes of a record frame before its payload
/// (`kind u8 ‖ payload_len u32 ‖ crc32 u32`).
pub const FRAME_LEN: usize = 9;

/// Record kind tag for an interned code artifact.
pub const KIND_ARTIFACT: u8 = 0x01;

/// Record kind tag for a slot timeline.
pub const KIND_TIMELINE: u8 = 0x02;

/// Timeline flag bit: the `resolved_to` field is present (the timeline
/// has a resolution watermark). A cleared bit means the watermark is
/// `None` and the on-disk `resolved_to` field must be zero.
pub const TIMELINE_FLAG_RESOLVED: u8 = 0x01;

/// A fully decoded record payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Contract bytecode keyed by its claimed keccak256 hash. The hash
    /// is re-verified against the bytes on load; the CRC alone is not
    /// trusted for content addressing.
    Artifact {
        /// Claimed keccak256 of `code`.
        code_hash: B256,
        /// The raw runtime bytecode.
        code: Vec<u8>,
    },
    /// One `(proxy, slot)` storage timeline with its change points and
    /// resolution watermark.
    Timeline {
        /// The proxy contract whose storage slot this timeline tracks.
        proxy: Address,
        /// The storage slot.
        slot: U256,
        /// Highest block the timeline is resolved through, if any.
        resolved_to: Option<u64>,
        /// Probe ledger carried for accounting continuity.
        probes: u64,
        /// Strictly block-increasing `(block, value)` change points.
        points: Vec<(u64, U256)>,
    },
}

/// Writes the 8-byte segment header into `buf`.
pub fn write_header(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
}

/// Checks a segment header. Returns the format version on success.
pub fn check_header(buf: &[u8]) -> Result<u16, HeaderError> {
    if buf.len() < HEADER_LEN {
        return Err(HeaderError::TooShort);
    }
    if buf[..4] != MAGIC {
        return Err(HeaderError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != FORMAT_VERSION {
        return Err(HeaderError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Why a segment header was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`HEADER_LEN`] bytes in the file.
    TooShort,
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a format this reader does not speak.
    UnsupportedVersion(u16),
}

/// Appends one framed record (`kind ‖ len ‖ crc ‖ payload`) to `buf`.
pub fn write_record(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crate::crc::crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Encodes an artifact payload: `codehash [32] ‖ code`.
pub fn encode_artifact(code_hash: B256, code: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + code.len());
    payload.extend_from_slice(code_hash.as_bytes());
    payload.extend_from_slice(code);
    payload
}

/// Encodes a timeline payload (see module docs for the layout).
pub fn encode_timeline(
    proxy: Address,
    slot: U256,
    resolved_to: Option<u64>,
    probes: u64,
    points: &[(u64, U256)],
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(20 + 32 + 1 + 8 + 8 + 4 + points.len() * 40);
    payload.extend_from_slice(proxy.as_bytes());
    payload.extend_from_slice(&slot.to_be_bytes());
    let flags = if resolved_to.is_some() {
        TIMELINE_FLAG_RESOLVED
    } else {
        0
    };
    payload.push(flags);
    payload.extend_from_slice(&resolved_to.unwrap_or(0).to_le_bytes());
    payload.extend_from_slice(&probes.to_le_bytes());
    payload.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for &(block, value) in points {
        payload.extend_from_slice(&block.to_le_bytes());
        payload.extend_from_slice(&value.to_be_bytes());
    }
    payload
}

/// Decodes a payload whose CRC has already been verified.
///
/// Unknown kinds return `Ok(None)` so future record kinds degrade to a
/// skip rather than an error on old readers (forward compatibility
/// within a format version).
pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Option<Record>, DecodeError> {
    match kind {
        KIND_ARTIFACT => decode_artifact(payload).map(Some),
        KIND_TIMELINE => decode_timeline(payload).map(Some),
        _ => Ok(None),
    }
}

fn decode_artifact(payload: &[u8]) -> Result<Record, DecodeError> {
    if payload.len() < 32 {
        return Err(DecodeError::Short(
            "artifact payload shorter than a codehash",
        ));
    }
    let mut hash = [0u8; 32];
    hash.copy_from_slice(&payload[..32]);
    Ok(Record::Artifact {
        code_hash: B256(hash),
        code: payload[32..].to_vec(),
    })
}

fn decode_timeline(payload: &[u8]) -> Result<Record, DecodeError> {
    // Fixed prefix: proxy 20 + slot 32 + flags 1 + resolved 8 + probes 8 + count 4.
    const PREFIX: usize = 20 + 32 + 1 + 8 + 8 + 4;
    if payload.len() < PREFIX {
        return Err(DecodeError::Short(
            "timeline payload shorter than its fixed prefix",
        ));
    }
    let mut proxy = [0u8; 20];
    proxy.copy_from_slice(&payload[..20]);
    let slot = U256::from_be_slice(&payload[20..52]);
    let flags = payload[52];
    if flags & !TIMELINE_FLAG_RESOLVED != 0 {
        return Err(DecodeError::Malformed("unknown timeline flag bits set"));
    }
    let raw_resolved = u64::from_le_bytes(payload[53..61].try_into().expect("8 bytes"));
    let resolved_to = if flags & TIMELINE_FLAG_RESOLVED != 0 {
        Some(raw_resolved)
    } else if raw_resolved != 0 {
        return Err(DecodeError::Malformed(
            "resolved_to nonzero but flag cleared",
        ));
    } else {
        None
    };
    let probes = u64::from_le_bytes(payload[61..69].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(payload[69..73].try_into().expect("4 bytes")) as usize;
    let body = &payload[PREFIX..];
    if body.len() != count * 40 {
        return Err(DecodeError::Malformed(
            "timeline point count disagrees with payload length",
        ));
    }
    let mut points = Vec::with_capacity(count);
    for chunk in body.chunks_exact(40) {
        let block = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
        let value = U256::from_be_slice(&chunk[8..40]);
        points.push((block, value));
    }
    Ok(Record::Timeline {
        proxy: Address(proxy),
        slot,
        resolved_to,
        probes,
        points,
    })
}

/// Why a CRC-valid payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Payload too short for its fixed-size fields.
    Short(&'static str),
    /// Fields are internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Short(msg) | DecodeError::Malformed(msg) => f.write_str(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trip() {
        let code = vec![0x60, 0x80, 0x60, 0x40, 0x52];
        let hash = proxion_primitives::keccak256(&code);
        let payload = encode_artifact(hash, &code);
        let decoded = decode_payload(KIND_ARTIFACT, &payload).unwrap().unwrap();
        assert_eq!(
            decoded,
            Record::Artifact {
                code_hash: hash,
                code
            }
        );
    }

    #[test]
    fn timeline_round_trip() {
        let proxy = Address::from_low_u64(7);
        let slot = U256::from(0x360894u64);
        let points = vec![(10, U256::from(1u64)), (42, U256::from(2u64))];
        let payload = encode_timeline(proxy, slot, Some(100), 6, &points);
        let decoded = decode_payload(KIND_TIMELINE, &payload).unwrap().unwrap();
        assert_eq!(
            decoded,
            Record::Timeline {
                proxy,
                slot,
                resolved_to: Some(100),
                probes: 6,
                points
            }
        );
    }

    #[test]
    fn unresolved_timeline_round_trips_with_cleared_flag() {
        let payload = encode_timeline(Address::ZERO, U256::ZERO, None, 0, &[]);
        assert_eq!(payload[52], 0, "flag byte must be clear");
        let decoded = decode_payload(KIND_TIMELINE, &payload).unwrap().unwrap();
        match decoded {
            Record::Timeline { resolved_to, .. } => assert_eq!(resolved_to, None),
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_skipped_not_fatal() {
        assert_eq!(decode_payload(0x7F, b"future payload").unwrap(), None);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_payload(KIND_ARTIFACT, &[0u8; 31]).is_err());
        // Point count claims more points than bytes present.
        let mut payload = encode_timeline(Address::ZERO, U256::ZERO, Some(5), 0, &[]);
        payload[69] = 3;
        assert!(decode_payload(KIND_TIMELINE, &payload).is_err());
        // Nonzero resolved_to with the flag cleared is inconsistent.
        let mut payload = encode_timeline(Address::ZERO, U256::ZERO, None, 0, &[]);
        payload[53] = 9;
        assert!(decode_payload(KIND_TIMELINE, &payload).is_err());
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut buf = Vec::new();
        write_header(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(check_header(&buf), Ok(FORMAT_VERSION));
        assert_eq!(check_header(&buf[..4]), Err(HeaderError::TooShort));
        let mut bad = buf.clone();
        bad[0] = b'Q';
        assert_eq!(check_header(&bad), Err(HeaderError::BadMagic));
        let mut newer = buf.clone();
        newer[4] = 0xFF;
        assert_eq!(
            check_header(&newer),
            Err(HeaderError::UnsupportedVersion(0x00FF))
        );
    }
}
