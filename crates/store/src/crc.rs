//! CRC-32 (IEEE 802.3 / ISO-HDLC polynomial), implemented from scratch
//! so the store adds no runtime dependency.
//!
//! Every record in a segment file carries the CRC of its payload; a
//! mismatch on load marks the record corrupt (it is skipped and counted,
//! never trusted). CRC-32 is an error-*detection* code, not a MAC: it
//! catches disk rot and torn writes, not an adversary — which matches
//! the threat model of a local state directory.

/// The reflected polynomial of CRC-32/ISO-HDLC (zlib, Ethernet, PNG).
const POLYNOMIAL: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 checksum of `data` (init `0xFFFFFFFF`, reflected, final
/// XOR `0xFFFFFFFF` — the common zlib/`cksum -o 3` convention).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC catalogue's check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"proxion persistent state".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
