//! Segment files on disk: tolerant scanning and crash-safe sealing.
//!
//! A segment is immutable once sealed. Sealing goes through
//! `<name>.tmp` → `fsync(file)` → `rename` → `fsync(dir)`, so a crash
//! at any point leaves either no segment (only a `.tmp`, which loaders
//! ignore) or a complete one — never a half-visible segment under its
//! final name. Scanning is the dual: it must make progress past any
//! damage a crash or disk fault can leave behind, counting what it
//! skips instead of failing the load.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::format::{self, Record, FRAME_LEN, HEADER_LEN};

/// Suffix of sealed segment files.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// Prefix of sealed segment files.
pub const SEGMENT_PREFIX: &str = "state-";

/// Suffix of in-flight (not yet durable) segment writes. Loaders skip
/// these; `open` deletes leftovers from interrupted checkpoints.
pub const TMP_SUFFIX: &str = ".tmp";

/// Builds the file name of segment `id`: `state-0000000042.seg`.
pub fn segment_name(id: u64) -> String {
    format!("{SEGMENT_PREFIX}{id:010}{SEGMENT_SUFFIX}")
}

/// Parses a segment id back out of a file name produced by
/// [`segment_name`]. Returns `None` for anything else.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists sealed segments in `dir`, sorted ascending by id. Returns
/// `(id, path)` pairs; non-segment files are ignored.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = parse_segment_name(name) {
            out.push((id, entry.path()));
        }
    }
    out.sort_by_key(|&(id, _)| id);
    Ok(out)
}

/// Outcome of scanning one segment file.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Records whose frame and CRC checked out and whose payload decoded.
    pub records: Vec<Record>,
    /// Records (or tails) skipped because of damage: bad CRC, malformed
    /// payload, truncated frame, or an unreadable header.
    pub skipped: u64,
    /// Records skipped because their kind tag is unknown to this reader
    /// (forward compatibility, not damage).
    pub unknown: u64,
    /// True if the scan stopped before the end of the file because the
    /// remaining bytes could not be framed (truncated or garbled tail).
    pub truncated: bool,
}

/// Scans a segment buffer, collecting every decodable record.
///
/// Damage handling:
/// - unreadable header → everything skipped, one error;
/// - CRC or payload-decode failure with an in-bounds length → that
///   record is skipped and the scan continues at the next frame;
/// - a length that points past the end of the buffer → truncated tail,
///   the scan stops (one error covers the whole tail).
pub fn scan_segment(buf: &[u8]) -> ScanResult {
    let mut result = ScanResult::default();
    if format::check_header(buf).is_err() {
        result.skipped = 1;
        result.truncated = true;
        return result;
    }
    let mut offset = HEADER_LEN;
    while offset < buf.len() {
        if buf.len() - offset < FRAME_LEN {
            result.skipped += 1;
            result.truncated = true;
            break;
        }
        let kind = buf[offset];
        let payload_len =
            u32::from_le_bytes(buf[offset + 1..offset + 5].try_into().expect("4 bytes")) as usize;
        let stored_crc =
            u32::from_le_bytes(buf[offset + 5..offset + 9].try_into().expect("4 bytes"));
        let payload_start = offset + FRAME_LEN;
        let Some(payload_end) = payload_start.checked_add(payload_len) else {
            result.skipped += 1;
            result.truncated = true;
            break;
        };
        if payload_end > buf.len() {
            result.skipped += 1;
            result.truncated = true;
            break;
        }
        let payload = &buf[payload_start..payload_end];
        if crc32(payload) != stored_crc {
            result.skipped += 1;
        } else {
            match format::decode_payload(kind, payload) {
                Ok(Some(record)) => result.records.push(record),
                Ok(None) => result.unknown += 1,
                Err(_) => result.skipped += 1,
            }
        }
        offset = payload_end;
    }
    result
}

/// Reads and scans the segment at `path`.
pub fn read_segment(path: &Path) -> io::Result<ScanResult> {
    let buf = fs::read(path)?;
    Ok(scan_segment(&buf))
}

/// Seals `buf` (a complete segment image, header included) as segment
/// `id` in `dir`, crash-safely. Returns the number of bytes written.
pub fn seal_segment(dir: &Path, id: u64, buf: &[u8]) -> io::Result<u64> {
    let final_path = dir.join(segment_name(id));
    let tmp_path = dir.join(format!("{}{TMP_SUFFIX}", segment_name(id)));
    {
        let mut file = File::create(&tmp_path)?;
        file.write_all(buf)?;
        file.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir)?;
    Ok(buf.len() as u64)
}

/// Fsyncs a directory so a preceding rename is durable. On platforms
/// where directories cannot be opened for sync this is a no-op.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(handle) => handle.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}

/// Deletes leftover `*.tmp` files from interrupted checkpoints.
/// Returns how many were removed.
pub fn sweep_tmp_files(dir: &Path) -> io::Result<u64> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(TMP_SUFFIX) {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_artifact, write_header, write_record, KIND_ARTIFACT};
    use proxion_primitives::keccak256;

    fn segment_with_codes(codes: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_header(&mut buf);
        for code in codes {
            let payload = encode_artifact(keccak256(code), code);
            write_record(&mut buf, KIND_ARTIFACT, &payload);
        }
        buf
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_name(42), "state-0000000042.seg");
        assert_eq!(parse_segment_name("state-0000000042.seg"), Some(42));
        assert_eq!(parse_segment_name("state-0000000042.seg.tmp"), None);
        assert_eq!(parse_segment_name("state-42.seg"), None);
        assert_eq!(parse_segment_name("INDEX"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let buf = segment_with_codes(&[b"\x60\x00", b"\x60\x01\x50"]);
        let result = scan_segment(&buf);
        assert_eq!(result.records.len(), 2);
        assert_eq!(result.skipped, 0);
        assert!(!result.truncated);
    }

    #[test]
    fn bit_flip_skips_one_record_and_keeps_the_rest() {
        let mut buf = segment_with_codes(&[b"\x60\x00", b"\x60\x01\x50"]);
        // Flip a byte inside the first record's payload.
        let victim = HEADER_LEN + FRAME_LEN + 5;
        buf[victim] ^= 0x40;
        let result = scan_segment(&buf);
        assert_eq!(result.records.len(), 1, "second record must survive");
        assert_eq!(result.skipped, 1);
        assert!(!result.truncated);
    }

    #[test]
    fn truncated_tail_keeps_complete_records() {
        let buf = segment_with_codes(&[b"\x60\x00", b"\x60\x01\x50"]);
        let cut = buf.len() - 3;
        let result = scan_segment(&buf[..cut]);
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.skipped, 1);
        assert!(result.truncated);
    }

    #[test]
    fn bad_header_is_one_error_not_a_panic() {
        let result = scan_segment(b"not a segment at all");
        assert!(result.records.is_empty());
        assert_eq!(result.skipped, 1);
    }

    #[test]
    fn length_field_past_eof_is_a_truncated_tail() {
        let mut buf = segment_with_codes(&[b"\x60\x00"]);
        // Inflate the length field far beyond the file.
        buf[HEADER_LEN + 1] = 0xFF;
        buf[HEADER_LEN + 2] = 0xFF;
        let result = scan_segment(&buf);
        assert!(result.records.is_empty());
        assert_eq!(result.skipped, 1);
        assert!(result.truncated);
    }
}
