//! Persistent warm state for the Proxion service.
//!
//! Analysing a proxy cold costs dozens of `ChainSource` probes: the
//! bytecode fetch, the detection pass over it, and — dominating
//! everything on long chains — the bisection probes that rebuild each
//! `(proxy, slot)` storage timeline. All of that state already lives in
//! memory (`ArtifactStore` keys artifacts by codehash; `HistoryIndex`
//! keys timelines by `(proxy, slot)` with a `resolved_to` watermark),
//! but dies with the process. This crate makes it survive restarts.
//!
//! # Design
//!
//! State is persisted as **append-only segment files** in a state
//! directory (`state-<id>.seg`), each a magic/versioned header followed
//! by length-prefixed, CRC-checked records. Two record kinds exist
//! today: interned bytecode (keyed by codehash, re-verified with
//! keccak256 on load) and slot timelines (change points plus the
//! resolution watermark). The full byte-level layout is specified in
//! `docs/STATE_FORMAT.md`.
//!
//! Three properties drive the format:
//!
//! - **Crash safety.** Segments become visible only via
//!   write-tmp → fsync → rename → fsync-dir. A crash mid-checkpoint
//!   loses at most the in-flight segment.
//! - **Corruption tolerance.** Load skips and counts damaged records
//!   (bad CRC, truncated tail, hash mismatch, invariant violation) and
//!   keeps everything around them. It never panics on bad input.
//! - **Idempotent replay.** Segments replay oldest-first, last record
//!   wins, and `HistoryIndex::restore` keeps whichever timeline is
//!   fresher — so duplicated records (e.g. from an interrupted
//!   [`compact`]) are harmless.
//!
//! # Use
//!
//! ```no_run
//! use proxion_core::{ArtifactStore, HistoryIndex};
//! use proxion_store::StateStore;
//!
//! let artifacts = ArtifactStore::new();
//! let history = HistoryIndex::new(1024);
//! let store = StateStore::open("state")?;
//! let report = store.load(&artifacts, &history)?;
//! println!("warm: {} artifacts, {} timelines", report.artifacts_loaded, report.timelines_loaded);
//! // ... analyse ...
//! store.checkpoint(&artifacts, &history)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(missing_docs)]

pub mod crc;
pub mod format;
pub mod segment;
mod store;

pub use store::{
    compact, info, write_index, CheckpointReport, CompactReport, LoadReport, SegmentInfo,
    StateStore, StoreInfo, StoreStats, INDEX_FILE, INDEX_HEADER,
};
