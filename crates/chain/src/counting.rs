//! Per-source API-call accounting.
//!
//! The paper's performance evaluation (§6.1) reports "API calls per
//! proxy" — chiefly `eth_getStorageAt`, which dominates Algorithm 1's
//! binary search over a proxy's block range. Accounting used to be a
//! global counter baked into [`Chain`](crate::Chain); it is now a
//! decorator, so each experiment (or each concurrent request) counts its
//! own reads, over any backend.

use std::sync::atomic::{AtomicU64, Ordering};

use proxion_primitives::{Address, B256, U256};

use crate::node::{DeploymentInfo, TxRecord};
use crate::source::{ChainSource, SourceResult};

/// A snapshot of per-method call counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SourceCounts {
    /// `code_at` + `code_hash_at` calls (one bytecode fetch each).
    pub code_at: u64,
    /// Historical `storage_at` calls — the paper's headline cost metric.
    pub storage_at: u64,
    /// Head-value `storage_latest` calls.
    pub storage_latest: u64,
    /// Transaction-history queries (`transactions*`, `has_transactions`).
    pub tx_queries: u64,
    /// Everything else (head, balances, nonces, deployments, liveness).
    pub other: u64,
}

impl SourceCounts {
    /// Total calls across all methods.
    pub fn total(&self) -> u64 {
        self.code_at + self.storage_at + self.storage_latest + self.tx_queries + self.other
    }
}

/// A [`ChainSource`] decorator that counts every read it forwards.
pub struct CountingSource<S> {
    inner: S,
    code_at: AtomicU64,
    storage_at: AtomicU64,
    storage_latest: AtomicU64,
    tx_queries: AtomicU64,
    other: AtomicU64,
}

impl<S: ChainSource> CountingSource<S> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            code_at: AtomicU64::new(0),
            storage_at: AtomicU64::new(0),
            storage_latest: AtomicU64::new(0),
            tx_queries: AtomicU64::new(0),
            other: AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Current per-method counts.
    pub fn counts(&self) -> SourceCounts {
        SourceCounts {
            code_at: self.code_at.load(Ordering::Relaxed),
            storage_at: self.storage_at.load(Ordering::Relaxed),
            storage_latest: self.storage_latest.load(Ordering::Relaxed),
            tx_queries: self.tx_queries.load(Ordering::Relaxed),
            other: self.other.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (between experiments).
    pub fn reset(&self) {
        self.code_at.store(0, Ordering::Relaxed);
        self.storage_at.store(0, Ordering::Relaxed);
        self.storage_latest.store(0, Ordering::Relaxed);
        self.tx_queries.store(0, Ordering::Relaxed);
        self.other.store(0, Ordering::Relaxed);
    }
}

impl<S: ChainSource> ChainSource for CountingSource<S> {
    fn head_block(&self) -> SourceResult<u64> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.head_block()
    }
    fn code_at(&self, address: Address) -> SourceResult<std::sync::Arc<Vec<u8>>> {
        self.code_at.fetch_add(1, Ordering::Relaxed);
        self.inner.code_at(address)
    }
    fn code_hash_at(&self, address: Address) -> SourceResult<B256> {
        self.code_at.fetch_add(1, Ordering::Relaxed);
        self.inner.code_hash_at(address)
    }
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256> {
        self.storage_at.fetch_add(1, Ordering::Relaxed);
        self.inner.storage_at(address, slot, block)
    }
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256> {
        self.storage_latest.fetch_add(1, Ordering::Relaxed);
        self.inner.storage_latest(address, slot)
    }
    fn balance_of(&self, address: Address) -> SourceResult<U256> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.balance_of(address)
    }
    fn nonce_of(&self, address: Address) -> SourceResult<u64> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.nonce_of(address)
    }
    fn block_hash(&self, number: u64) -> SourceResult<B256> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.block_hash(number)
    }
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.deployment(address)
    }
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.deployed_between(after, up_to)
    }
    fn contracts(&self) -> SourceResult<Vec<Address>> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.contracts()
    }
    fn is_alive(&self, address: Address) -> SourceResult<bool> {
        self.other.fetch_add(1, Ordering::Relaxed);
        self.inner.is_alive(address)
    }
    fn transactions(&self) -> SourceResult<Vec<TxRecord>> {
        self.tx_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.transactions()
    }
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>> {
        self.tx_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.transactions_of(address)
    }
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        self.tx_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.has_transactions(address)
    }
    fn env(&self) -> SourceResult<proxion_evm::Env> {
        // Not an API call: derived locally from the head height.
        self.inner.env()
    }
}
