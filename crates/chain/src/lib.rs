//! A simulated Ethereum archive node.
//!
//! Proxion (the paper) consumes Ethereum through a narrow interface: the
//! runtime bytecode of every account, `getStorageAt(address, slot, block)`
//! over the whole chain history, deployment metadata, and transaction
//! records (to know which contracts ever interacted). This crate provides
//! exactly that interface over an in-memory chain whose blocks are produced
//! by executing real transactions through the `proxion-evm` interpreter.
//!
//! Two pieces matter to the analyses:
//!
//! * [`Chain`] — the node: executes transactions block by block, maintains
//!   a per-slot change history so historical storage queries answer exactly
//!   as a real archive node would, and counts `getStorageAt` API calls so
//!   the paper's efficiency claim (≈26 calls per proxy, §6.1) can be
//!   measured.
//! * [`ForkDb`] — a copy-on-write overlay over the chain state. Proxion's
//!   dynamic proxy detection *emulates* contracts with crafted call data;
//!   running that emulation on a fork guarantees the probe never perturbs
//!   the chain.
//!
//! # Examples
//!
//! ```
//! use proxion_chain::Chain;
//! use proxion_primitives::{Address, U256};
//!
//! let mut chain = Chain::new();
//! let me = chain.new_funded_account();
//! // Deploy a contract that just stops (runtime code = 0x00).
//! let init = vec![0x60, 0x00, 0x5f, 0x53, 0x60, 0x01, 0x5f, 0xf3];
//! let addr = chain.deploy(me, init).expect("deploys");
//! assert!(!chain.code_at(addr).is_empty());
//! ```

mod fork;
mod node;
mod trace;

pub use fork::ForkDb;
pub use node::{Chain, ChainError, DeploymentInfo, HeadWatch, InternalCall, TxRecord};
pub use trace::{TraceBuilder, TraceFrame, TxTrace};
