//! A simulated Ethereum archive node.
//!
//! Proxion (the paper) consumes Ethereum through a narrow interface: the
//! runtime bytecode of every account, `getStorageAt(address, slot, block)`
//! over the whole chain history, deployment metadata, and transaction
//! records (to know which contracts ever interacted). This crate provides
//! exactly that interface over an in-memory chain whose blocks are produced
//! by executing real transactions through the `proxion-evm` interpreter.
//!
//! The crate is split into a concrete node and a provider layer:
//!
//! * [`Chain`] — the node: executes transactions block by block and
//!   maintains a per-slot change history so historical storage queries
//!   answer exactly as a real archive node would.
//! * [`ChainSource`] — the read API the analyses consume, as a trait, so
//!   backends can be swapped and decorated. [`Chain`] implements it; so
//!   does [`ChainSnapshot`] (a cheap copy-on-write read view at a fixed
//!   height — writers never block readers), [`CachedSource`] (codehash
//!   interning, negative cache for empty accounts, memoized storage
//!   reads), [`FaultySource`] (deterministic latency/transient-error
//!   injection), and [`CountingSource`] (the paper's "API calls per
//!   proxy" accounting, ≈26 `getStorageAt` calls per proxy, §6.1).
//! * [`ForkDb`] / [`SourceHost`] — copy-on-write emulation overlays.
//!   Proxion's dynamic proxy detection *emulates* contracts with crafted
//!   call data; running that emulation on an overlay guarantees the probe
//!   never perturbs the chain. `ForkDb` forks the concrete state db;
//!   `SourceHost` forks any [`ChainSource`].
//!
//! # Examples
//!
//! ```
//! use proxion_chain::Chain;
//! use proxion_primitives::{Address, U256};
//!
//! let mut chain = Chain::new();
//! let me = chain.new_funded_account();
//! // Deploy a contract that just stops (runtime code = 0x00).
//! let init = vec![0x60, 0x00, 0x5f, 0x53, 0x60, 0x01, 0x5f, 0xf3];
//! let addr = chain.deploy(me, init).expect("deploys");
//! assert!(!chain.code_at(addr).is_empty());
//! ```

mod cached;
mod counting;
mod faulty;
mod fork;
mod lru;
mod node;
mod source;
mod trace;

pub use cached::{CachedSource, SourceCache, SourceCacheStats};
pub use counting::{CountingSource, SourceCounts};
pub use faulty::{FaultConfig, FaultySource};
pub use fork::ForkDb;
pub use lru::{CacheStats, ShardedLru};
pub use node::{
    Chain, ChainError, ChainSnapshot, DeploymentInfo, HeadWatch, InternalCall, TxRecord,
};
pub use source::{env_for_head, ChainSource, CodeIdentity, SourceError, SourceHost, SourceResult};
pub use trace::{TraceBuilder, TraceFrame, TxTrace};
