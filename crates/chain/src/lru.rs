//! A concurrent sharded LRU map.
//!
//! Lives in `proxion-chain` because both layers of the stack memoize on
//! content hashes: the analysis-result cache in `proxion-core` (proxy
//! verdicts and collision reports keyed by bytecode hash) and the
//! [`CachedSource`](crate::CachedSource) provider decorator (codehash
//! interning and storage-read memoization). Keeping one implementation
//! here lets the provider layer use it without a dependency cycle.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Counters of one cache table (monotonic except `entries`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent map sharded over independently locked LRU segments.
///
/// Lookups and insertions lock only the shard the key hashes to; recency
/// is a per-shard logical tick bumped on every touch, and an insertion
/// into a full shard evicts that shard's least recently used entry.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Shard<K, V> {
    entries: HashMap<K, Entry<V>>,
    tick: u64,
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

const SHARDS: usize = 16;

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache holding roughly `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        ShardedLru {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// The index of the shard `key` routes to (stable across calls; used
    /// by tests to construct colliding key sets).
    pub fn shard_index(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    /// Number of shards (fixed) — `shard_index` is always below this.
    pub fn shard_count(&self) -> usize {
        SHARDS
    }

    /// Per-shard entry bound: an insertion into a shard already holding
    /// this many entries evicts that shard's least recently used one.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }

    /// Returns a clone of the cached value, refreshing its recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value, evicting the shard's least recently used entry if
    /// the shard is at capacity. Concurrent computes of the same key are
    /// allowed (last write wins) — the lock is never held while computing.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&key) {
            // O(shard len) scan; shards stay small and insertions are rare
            // next to the analysis work whose result is being stored.
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                shard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Returns the cached value for `key`, or inserts the one produced by
    /// `make` and returns it. Unlike [`get`](Self::get) + [`insert`](Self::insert),
    /// the shard lock **is** held while `make` runs, so concurrent callers
    /// for the same key observe exactly one call to `make` and all receive
    /// clones of the same stored value — which is what lets an interning
    /// cache guarantee pointer-identical `Arc`s per key. Only use this with
    /// cheap constructors; expensive computations should go through the
    /// unlocked `get`/`insert` pair instead.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V {
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.entries.get_mut(&key) {
            entry.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.value.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if shard.entries.len() >= self.per_shard_capacity {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                shard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let value = make();
        shard.entries.insert(
            key,
            Entry {
                value: value.clone(),
                last_used: tick,
            },
        );
        value
    }

    /// Clones every resident `(key, value)` pair, shard by shard.
    ///
    /// The snapshot is *per-shard* consistent (each shard is locked while
    /// it is copied), not globally consistent — entries inserted or
    /// evicted concurrently may or may not appear. Recency and the
    /// hit/miss counters are untouched, so persisting a snapshot never
    /// perturbs cache behaviour.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            out.extend(
                shard
                    .entries
                    .iter()
                    .map(|(k, entry)| (k.clone(), entry.value.clone())),
            );
        }
        out
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().entries.len()).sum(),
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let cache: ShardedLru<u64, String> = ShardedLru::new(64);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "one".to_owned());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
    }

    /// The first `n` keys from `1..` that hash into the same shard as 0.
    fn shard_mates<V: Clone>(cache: &ShardedLru<u64, V>, n: usize) -> Vec<u64> {
        (1u64..)
            .filter(|k| cache.shard_index(k) == cache.shard_index(&0))
            .take(n)
            .collect()
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        // Capacity 16 over 16 shards → each shard holds exactly one entry,
        // so two keys in the same shard force an eviction of the older.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(16);
        let second = shard_mates(&cache, 1)[0];

        cache.insert(0, 10);
        cache.insert(second, 20);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(cache.get(&0), None, "older entry evicted");
        assert_eq!(cache.get(&second), Some(20));
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        // 32 entries over 16 shards → 2 per shard. With three keys in one
        // shard, refreshing the first makes the second the LRU victim.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(32);
        let mates = shard_mates(&cache, 2);
        let (b, c) = (mates[0], mates[1]);
        cache.insert(0, 1);
        cache.insert(b, 2);
        assert_eq!(cache.get(&0), Some(1)); // refresh key 0
        cache.insert(c, 3); // shard full: evicts `b`, not 0
        assert_eq!(cache.get(&0), Some(1));
        assert_eq!(cache.get(&b), None);
        assert_eq!(cache.get(&c), Some(3));
    }

    #[test]
    fn get_or_insert_with_runs_make_once_per_key() {
        let cache: ShardedLru<u64, std::sync::Arc<u64>> = ShardedLru::new(64);
        let first = cache.get_or_insert_with(7, || std::sync::Arc::new(70));
        let second = cache.get_or_insert_with(7, || std::sync::Arc::new(71));
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(*second, 70, "second make closure never ran");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn get_or_insert_with_evicts_at_capacity() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(16);
        let second = shard_mates(&cache, 1)[0];
        cache.get_or_insert_with(0, || 10);
        cache.get_or_insert_with(second, || 20);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(&0), None, "older entry evicted");
        assert_eq!(cache.get(&second), Some(20));
    }

    #[test]
    fn snapshot_returns_all_entries_without_touching_counters() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(64);
        for k in 0..10u64 {
            cache.insert(k, k * 2);
        }
        let before = cache.stats();
        let mut snapshot = cache.snapshot();
        snapshot.sort_unstable();
        assert_eq!(snapshot, (0..10u64).map(|k| (k, k * 2)).collect::<Vec<_>>());
        let after = cache.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(64);
        cache.insert(1, 1);
        assert_eq!(cache.get(&1), Some(1));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.get(&1), None);
    }
}
