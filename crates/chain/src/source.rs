//! The provider layer: [`ChainSource`], the narrow read interface every
//! analysis consumes, and [`SourceHost`], the adapter that lets the EVM
//! emulate against any source.
//!
//! Proxion's node dependency is small — runtime bytecode, historical
//! `getStorageAt`, deployment metadata, and transaction records (paper §4,
//! Algorithm 1). Everything on the read side (`ProxyDetector`,
//! `LogicResolver`, the collision detectors, the baselines, the service)
//! is generic over this trait, so the in-memory [`Chain`](crate::Chain),
//! a lock-free [`ChainSnapshot`](crate::ChainSnapshot), a caching
//! decorator, or a fault-injected backend are interchangeable. Every
//! method returns a [`SourceResult`] because real backends (archive RPC,
//! remote indexes) fail; the in-memory implementations are infallible and
//! always return `Ok`.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use proxion_evm::{BlockEnv, Env, Host, Snapshot};
use proxion_primitives::{keccak256, Address, B256, U256};

use crate::node::{DeploymentInfo, TxRecord};

/// A typed failure of a chain backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A transient failure (timeout, rate limit, connection reset) that a
    /// retry with backoff may resolve.
    Transient(String),
    /// A permanent failure (malformed response, unsupported query) that
    /// retrying cannot fix.
    Permanent(String),
}

impl SourceError {
    /// Whether a retry with backoff is worthwhile.
    pub fn is_transient(&self) -> bool {
        matches!(self, SourceError::Transient(_))
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient(m) => write!(f, "transient source error: {m}"),
            SourceError::Permanent(m) => write!(f, "permanent source error: {m}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Result alias for [`ChainSource`] reads.
pub type SourceResult<T> = Result<T, SourceError>;

/// A block-versioned account→code binding.
///
/// `address → codehash` is NOT a stable mapping on Ethereum: a CREATE2
/// selfdestruct-and-redeploy (metamorphic contract) installs different code
/// at the same address. Every cache that binds analysis state to an address
/// must therefore remember *which* code it observed and *when*; the binding
/// is only trustworthy while the live codehash still matches. Artifacts
/// themselves stay keyed by codehash (immutable per hash) — identity is the
/// revalidation token for the binding, not the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeIdentity {
    /// The account the code was observed at.
    pub address: Address,
    /// `keccak256` of the runtime bytecode observed.
    pub code_hash: B256,
    /// Head height of the observation.
    pub as_of_block: u64,
}

impl CodeIdentity {
    /// Whether a later observation still names the same code. Identity
    /// holds when the hash is unchanged; the block only tells *when* the
    /// binding was last validated.
    pub fn same_code(&self, current_hash: B256) -> bool {
        self.code_hash == current_hash
    }
}

/// The read API Proxion consumes from an (archive) node, as a trait so
/// backends can be swapped and decorated.
///
/// The mutation API stays on the concrete [`Chain`](crate::Chain): the
/// analyses never write, and keeping writers concrete is what makes the
/// cheap copy-on-write [`ChainSnapshot`](crate::ChainSnapshot) sound.
pub trait ChainSource: Sync {
    /// Highest committed block height this source answers for.
    fn head_block(&self) -> SourceResult<u64>;

    /// Runtime bytecode at the source's head block.
    fn code_at(&self, address: Address) -> SourceResult<Arc<Vec<u8>>>;

    /// `keccak256` of the runtime bytecode at the head block.
    fn code_hash_at(&self, address: Address) -> SourceResult<B256> {
        Ok(keccak256(self.code_at(address)?.as_slice()))
    }

    /// `eth_getStorageAt(address, slot, block)`: the slot value as of the
    /// *end* of `block`.
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256>;

    /// Current (head) value of a storage slot.
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256>;

    /// Account balance at the head block (consumed by EVM emulation).
    fn balance_of(&self, address: Address) -> SourceResult<U256>;

    /// Account nonce at the head block (consumed by EVM emulation).
    fn nonce_of(&self, address: Address) -> SourceResult<u64>;

    /// Hash for the `BLOCKHASH` opcode during emulation.
    fn block_hash(&self, number: u64) -> SourceResult<B256>;

    /// Deployment metadata for a contract.
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>>;

    /// Deployments with block height in `(after, up_to]`, in chain order.
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>>;

    /// All contract addresses ever deployed, in deployment order.
    fn contracts(&self) -> SourceResult<Vec<Address>>;

    /// Whether the contract is alive (deployed and not destroyed).
    fn is_alive(&self, address: Address) -> SourceResult<bool>;

    /// All recorded transactions.
    fn transactions(&self) -> SourceResult<Vec<TxRecord>>;

    /// The transactions a contract participated in.
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>>;

    /// Whether the contract appears in any transaction — the availability
    /// criterion trace-replay tools require and hidden contracts lack.
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        Ok(!self.transactions_of(address)?.is_empty())
    }

    /// The execution environment for this source's head block.
    fn env(&self) -> SourceResult<Env> {
        Ok(env_for_head(self.head_block()?))
    }

    /// The block-versioned code binding for an account at this source's
    /// head: what code is there *now*, stamped with the height of the
    /// observation. Consumers compare a stored identity's hash against a
    /// fresh one to detect metamorphic redeploys.
    fn code_identity(&self, address: Address) -> SourceResult<CodeIdentity> {
        Ok(CodeIdentity {
            address,
            code_hash: self.code_hash_at(address)?,
            as_of_block: self.head_block()?,
        })
    }
}

/// The canonical execution environment for a head height (block number and
/// the 12-second mainnet cadence from the genesis timestamp).
pub fn env_for_head(head: u64) -> Env {
    Env {
        block: BlockEnv {
            number: head,
            timestamp: 1_438_269_973 + head * 12,
            ..BlockEnv::default()
        },
        ..Env::default()
    }
}

/// Forwarding impl so generic analyses compose over references.
impl<S: ChainSource + ?Sized> ChainSource for &S {
    fn head_block(&self) -> SourceResult<u64> {
        (**self).head_block()
    }
    fn code_at(&self, address: Address) -> SourceResult<Arc<Vec<u8>>> {
        (**self).code_at(address)
    }
    fn code_hash_at(&self, address: Address) -> SourceResult<B256> {
        (**self).code_hash_at(address)
    }
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256> {
        (**self).storage_at(address, slot, block)
    }
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256> {
        (**self).storage_latest(address, slot)
    }
    fn balance_of(&self, address: Address) -> SourceResult<U256> {
        (**self).balance_of(address)
    }
    fn nonce_of(&self, address: Address) -> SourceResult<u64> {
        (**self).nonce_of(address)
    }
    fn block_hash(&self, number: u64) -> SourceResult<B256> {
        (**self).block_hash(number)
    }
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>> {
        (**self).deployment(address)
    }
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>> {
        (**self).deployed_between(after, up_to)
    }
    fn contracts(&self) -> SourceResult<Vec<Address>> {
        (**self).contracts()
    }
    fn is_alive(&self, address: Address) -> SourceResult<bool> {
        (**self).is_alive(address)
    }
    fn transactions(&self) -> SourceResult<Vec<TxRecord>> {
        (**self).transactions()
    }
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>> {
        (**self).transactions_of(address)
    }
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        (**self).has_transactions(address)
    }
    fn env(&self) -> SourceResult<Env> {
        (**self).env()
    }
}

/// A journaled copy-on-write [`Host`] over any [`ChainSource`], the
/// emulation twin of [`ForkDb`](crate::ForkDb).
///
/// The EVM's [`Host`] interface is infallible — the interpreter cannot
/// surface I/O errors mid-execution — so a failed source read is recorded
/// as a *poison* (first error wins) and answered with the empty default.
/// Callers must check [`SourceHost::take_error`] after the execution and
/// discard the result if a read failed; the proxy detector turns a
/// poisoned run into a typed `SourceError` outcome instead of a verdict.
pub struct SourceHost<'a, S: ?Sized> {
    source: &'a S,
    storage: HashMap<(Address, U256), U256>,
    balances: HashMap<Address, U256>,
    nonces: HashMap<Address, u64>,
    codes: HashMap<Address, Arc<Vec<u8>>>,
    destroyed: HashSet<Address>,
    journal: Vec<JournalEntry>,
    error: RefCell<Option<SourceError>>,
}

enum JournalEntry {
    Storage(Address, U256, Option<U256>),
    Balance(Address, Option<U256>),
    Nonce(Address, Option<u64>),
    Code(Address, Option<Arc<Vec<u8>>>),
    Destroyed(Address, bool),
}

impl<'a, S: ChainSource + ?Sized> SourceHost<'a, S> {
    /// Creates an overlay host over `source`.
    pub fn new(source: &'a S) -> Self {
        SourceHost {
            source,
            storage: HashMap::new(),
            balances: HashMap::new(),
            nonces: HashMap::new(),
            codes: HashMap::new(),
            destroyed: HashSet::new(),
            journal: Vec::new(),
            error: RefCell::new(None),
        }
    }

    /// The first source error observed during execution, if any. Taking it
    /// resets the poison.
    pub fn take_error(&self) -> Option<SourceError> {
        self.error.borrow_mut().take()
    }

    fn read<T: Default>(&self, result: SourceResult<T>) -> T {
        match result {
            Ok(value) => value,
            Err(error) => {
                let mut slot = self.error.borrow_mut();
                if slot.is_none() {
                    *slot = Some(error);
                }
                T::default()
            }
        }
    }
}

impl<S: ChainSource + ?Sized> Host for SourceHost<'_, S> {
    fn exists(&self, address: Address) -> bool {
        !self.balance(address).is_zero()
            || self.nonce(address) > 0
            || !self.code(address).is_empty()
    }

    fn balance(&self, address: Address) -> U256 {
        self.balances
            .get(&address)
            .copied()
            .unwrap_or_else(|| self.read(self.source.balance_of(address)))
    }

    fn nonce(&self, address: Address) -> u64 {
        self.nonces
            .get(&address)
            .copied()
            .unwrap_or_else(|| self.read(self.source.nonce_of(address)))
    }

    fn code(&self, address: Address) -> Arc<Vec<u8>> {
        self.codes
            .get(&address)
            .cloned()
            .unwrap_or_else(|| self.read(self.source.code_at(address)))
    }

    fn code_hash(&self, address: Address) -> B256 {
        match self.codes.get(&address) {
            Some(code) => keccak256(code.as_slice()),
            None => self.read(self.source.code_hash_at(address)),
        }
    }

    fn storage(&self, address: Address, slot: U256) -> U256 {
        self.storage
            .get(&(address, slot))
            .copied()
            .unwrap_or_else(|| self.read(self.source.storage_latest(address, slot)))
    }

    fn set_storage(&mut self, address: Address, slot: U256, value: U256) {
        let prev = self.storage.insert((address, slot), value);
        self.journal
            .push(JournalEntry::Storage(address, slot, prev));
    }

    fn set_balance(&mut self, address: Address, balance: U256) {
        let prev = self.balances.insert(address, balance);
        self.journal.push(JournalEntry::Balance(address, prev));
    }

    fn inc_nonce(&mut self, address: Address) -> u64 {
        let current = self.nonce(address);
        let prev = self.nonces.insert(address, current + 1);
        self.journal.push(JournalEntry::Nonce(address, prev));
        current
    }

    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        let prev = self.codes.insert(address, Arc::new(code));
        self.journal.push(JournalEntry::Code(address, prev));
    }

    fn mark_destroyed(&mut self, address: Address) {
        let was = !self.destroyed.insert(address);
        self.journal.push(JournalEntry::Destroyed(address, was));
    }

    fn block_hash(&self, number: u64) -> B256 {
        self.read(self.source.block_hash(number))
    }

    fn snapshot(&mut self) -> Snapshot {
        Snapshot::new(self.journal.len())
    }

    fn rollback(&mut self, snapshot: Snapshot) {
        let target = snapshot.index();
        while self.journal.len() > target {
            match self.journal.pop().expect("length checked") {
                JournalEntry::Storage(a, s, prev) => match prev {
                    Some(v) => {
                        self.storage.insert((a, s), v);
                    }
                    None => {
                        self.storage.remove(&(a, s));
                    }
                },
                JournalEntry::Balance(a, prev) => match prev {
                    Some(v) => {
                        self.balances.insert(a, v);
                    }
                    None => {
                        self.balances.remove(&a);
                    }
                },
                JournalEntry::Nonce(a, prev) => match prev {
                    Some(v) => {
                        self.nonces.insert(a, v);
                    }
                    None => {
                        self.nonces.remove(&a);
                    }
                },
                JournalEntry::Code(a, prev) => match prev {
                    Some(v) => {
                        self.codes.insert(a, v);
                    }
                    None => {
                        self.codes.remove(&a);
                    }
                },
                JournalEntry::Destroyed(a, was) => {
                    if !was {
                        self.destroyed.remove(&a);
                    }
                }
            }
        }
    }
}
