//! The simulated archive node.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use proxion_evm::{
    CallKind, CallResult, Env, Evm, Host, Inspector, MemoryDb, Message, RecordingInspector,
};
use proxion_primitives::{Address, DetRng, B256, U256};

use crate::source::{env_for_head, ChainSource, SourceResult};

/// Error returned by chain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A deployment's init code reverted or failed.
    DeploymentFailed(String),
    /// A direct install targeted an address that already has code.
    AddressOccupied(Address),
    /// A selfdestruct targeted an address without live code.
    NotAContract(Address),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::DeploymentFailed(reason) => write!(f, "deployment failed: {reason}"),
            ChainError::AddressOccupied(a) => write!(f, "address {a} already has code"),
            ChainError::NotAContract(a) => write!(f, "address {a} has no live code"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A clonable handle that observes head-block advancement.
///
/// The chain announces every *committed* block through its watch; failed
/// deployments (which roll the head back) are never announced, so the
/// observed height only moves forward and always names a block whose state
/// is fully visible through the query interface. Block followers hold a
/// clone of this handle and sleep in [`HeadWatch::wait_past`] instead of
/// polling [`Chain::head_block`].
#[derive(Clone)]
pub struct HeadWatch {
    inner: Arc<HeadWatchInner>,
}

struct HeadWatchInner {
    head: Mutex<u64>,
    advanced: Condvar,
}

impl HeadWatch {
    fn new(head: u64) -> Self {
        HeadWatch {
            inner: Arc::new(HeadWatchInner {
                head: Mutex::new(head),
                advanced: Condvar::new(),
            }),
        }
    }

    fn advance(&self, head: u64) {
        let mut current = self.inner.head.lock();
        if head > *current {
            *current = head;
            self.inner.advanced.notify_all();
        }
    }

    /// The highest committed block height announced so far.
    pub fn current(&self) -> u64 {
        *self.inner.head.lock()
    }

    /// Blocks until the committed head exceeds `last_seen`, returning the
    /// new height, or `None` if `timeout` elapses first.
    pub fn wait_past(&self, last_seen: u64, timeout: Duration) -> Option<u64> {
        let deadline = std::time::Instant::now() + timeout;
        let mut head = self.inner.head.lock();
        while *head <= last_seen {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .inner
                .advanced
                .wait_for(&mut head, deadline - now)
                .timed_out()
                && *head <= last_seen
            {
                return None;
            }
        }
        Some(*head)
    }
}

impl fmt::Debug for HeadWatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeadWatch")
            .field("head", &self.current())
            .finish()
    }
}

/// Metadata about a deployed contract.
#[derive(Debug, Clone)]
pub struct DeploymentInfo {
    /// Block height at which the contract appeared.
    pub block: u64,
    /// The deploying account (EOA or factory contract).
    pub deployer: Address,
}

/// An internal (contract-to-contract) call observed while executing a
/// transaction.
#[derive(Debug, Clone)]
pub struct InternalCall {
    /// Block in which it happened.
    pub block: u64,
    /// Kind of call.
    pub kind: CallKind,
    /// The frame that issued the call (storage context).
    pub from: Address,
    /// The account whose code was invoked.
    pub code_address: Address,
}

/// A recorded external transaction.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Block height.
    pub block: u64,
    /// Sender (EOA).
    pub from: Address,
    /// Target contract (or created contract for deployments).
    pub to: Address,
    /// Whether the transaction succeeded.
    pub success: bool,
    /// The first four bytes of the call data, when present — the function
    /// selector the caller used (what trace-seeded analyses harvest).
    pub input_selector: Option<[u8; 4]>,
    /// Full call data, verbatim — what the replay engine re-executes.
    /// Empty for deployments (init code is not a replayable message call).
    pub input: Vec<u8>,
    /// Wei transferred with the call.
    pub value: U256,
    /// Internal calls made during execution.
    pub internal_calls: Vec<InternalCall>,
}

/// The complete queryable state of the node: current accounts plus full
/// history. Kept behind an `Arc` so [`Chain::snapshot`] is O(1): readers
/// clone the `Arc`, and the first mutation after a snapshot pays one
/// copy-on-write clone ([`Arc::make_mut`]) — writers never block readers.
#[derive(Clone)]
struct ChainState {
    db: MemoryDb,
    /// (address, slot) → change list [(block, new value)] in block order.
    storage_history: HashMap<(Address, U256), Vec<(u64, U256)>>,
    deployments: HashMap<Address, DeploymentInfo>,
    /// `(block, address)` for every deployment, in chain order — the feed
    /// incremental followers consume to analyze only what is new.
    /// Metamorphic redeploys append here too, so followers re-observe an
    /// address whose code changed under them.
    deploy_log: Vec<(u64, Address)>,
    /// Per-address selfdestruct heights, in chain order.
    destructions: HashMap<Address, Vec<u64>>,
    txs: Vec<TxRecord>,
    /// Per-address indexes into `txs` (as target or internal participant).
    tx_index: HashMap<Address, Vec<usize>>,
}

impl ChainState {
    fn new() -> Self {
        ChainState {
            db: MemoryDb::new(),
            storage_history: HashMap::new(),
            deployments: HashMap::new(),
            deploy_log: Vec::new(),
            destructions: HashMap::new(),
            txs: Vec::new(),
            tx_index: HashMap::new(),
        }
    }

    // ---- query helpers shared by `Chain` and `ChainSnapshot` ----

    fn storage_at(&self, address: Address, slot: U256, block: u64) -> U256 {
        match self.storage_history.get(&(address, slot)) {
            Some(history) => {
                // Last change at height <= block.
                match history.partition_point(|&(b, _)| b <= block) {
                    0 => U256::ZERO,
                    n => history[n - 1].1,
                }
            }
            None => U256::ZERO,
        }
    }

    fn deployed_between(&self, after: u64, up_to: u64) -> &[(u64, Address)] {
        let lo = self.deploy_log.partition_point(|&(b, _)| b <= after);
        let hi = self.deploy_log.partition_point(|&(b, _)| b <= up_to);
        &self.deploy_log[lo..hi]
    }

    fn contracts(&self) -> Vec<Address> {
        let mut all: Vec<(u64, Address)> = self
            .deployments
            .iter()
            .map(|(&a, info)| (info.block, a))
            .collect();
        all.sort_unstable();
        all.into_iter().map(|(_, a)| a).collect()
    }

    fn is_alive(&self, address: Address) -> bool {
        self.deployments.contains_key(&address) && !self.db.is_destroyed(address)
    }

    fn transactions_of(&self, address: Address) -> Vec<&TxRecord> {
        self.tx_index
            .get(&address)
            .map(|indexes| indexes.iter().map(|&i| &self.txs[i]).collect())
            .unwrap_or_default()
    }

    fn has_transactions(&self, address: Address) -> bool {
        self.tx_index.get(&address).is_some_and(|v| !v.is_empty())
    }
}

/// The simulated archive node: current state plus full history.
///
/// Every transaction occupies its own block (sufficient for the analyses,
/// which only need a total order of state changes). Storage writes are
/// recorded per block, so [`Chain::storage_at`] answers historical queries
/// exactly like `eth_getStorageAt` against an archive node. The paper's
/// "API calls per proxy" accounting (§6.1) lives in the provider layer:
/// wrap any [`ChainSource`] in a
/// [`CountingSource`](crate::CountingSource).
///
/// The read side is exposed twice: as inherent methods (for owners of the
/// concrete chain, e.g. dataset builders between mutations) and through the
/// [`ChainSource`] trait (for the generic analyses). [`Chain::snapshot`]
/// captures an immutable [`ChainSnapshot`] in O(1) for lock-free readers.
pub struct Chain {
    state: Arc<ChainState>,
    head: u64,
    head_watch: HeadWatch,
    rng: DetRng,
}

impl Default for Chain {
    fn default() -> Self {
        Self::new()
    }
}

impl Chain {
    /// Genesis block height.
    pub const GENESIS: u64 = 0;

    /// Creates a chain with an empty genesis state.
    pub fn new() -> Self {
        Chain {
            state: Arc::new(ChainState::new()),
            head: Self::GENESIS,
            head_watch: HeadWatch::new(Self::GENESIS),
            rng: DetRng::new(0x10ad),
        }
    }

    /// Current head block height.
    pub fn head_block(&self) -> u64 {
        self.head
    }

    /// The execution environment for the current head.
    pub fn env(&self) -> Env {
        env_for_head(self.head)
    }

    /// Read-only access to the underlying state database (for forks).
    pub fn db(&self) -> &MemoryDb {
        &self.state.db
    }

    /// Captures an immutable read view of the chain at its current head.
    ///
    /// O(1): clones the state `Arc`. The snapshot keeps answering queries
    /// for the captured height no matter how far the live chain advances;
    /// the first mutation after a capture pays one copy-on-write clone of
    /// the state, and writers never block snapshot readers.
    pub fn snapshot(&self) -> ChainSnapshot {
        ChainSnapshot {
            state: Arc::clone(&self.state),
            head: self.head,
        }
    }

    fn state_mut(&mut self) -> &mut ChainState {
        Arc::make_mut(&mut self.state)
    }

    /// Creates a fresh EOA funded with 2^96 wei.
    pub fn new_funded_account(&mut self) -> Address {
        let address = self.rng.next_address();
        let state = self.state_mut();
        state.db.set_balance(address, U256::ONE << 96u32);
        state.db.commit();
        address
    }

    fn begin_block(&mut self) -> u64 {
        self.head += 1;
        self.head
    }

    /// Announces the (now fully committed) head to all watchers. Called at
    /// the end of every successful mutation; failure paths that roll the
    /// head back never announce.
    fn commit_block(&mut self) {
        self.head_watch.advance(self.head);
    }

    fn record_deployment(&mut self, block: u64, address: Address, deployer: Address) {
        let state = self.state_mut();
        state
            .deployments
            .insert(address, DeploymentInfo { block, deployer });
        state.deploy_log.push((block, address));
    }

    fn record_state_changes(&mut self, block: u64) {
        let state = self.state_mut();
        for (address, slot) in state.db.journal_storage_keys() {
            let value = state.db.storage(address, slot);
            let history = state.storage_history.entry((address, slot)).or_default();
            if history.last().map(|&(_, v)| v) != Some(value) {
                history.push((block, value));
            }
        }
        state.db.commit();
    }

    fn record_tx(&mut self, record: TxRecord) {
        let state = self.state_mut();
        let index = state.txs.len();
        state.tx_index.entry(record.to).or_default().push(index);
        for call in &record.internal_calls {
            for participant in [call.from, call.code_address] {
                let entries = state.tx_index.entry(participant).or_default();
                if entries.last() != Some(&index) {
                    entries.push(index);
                }
            }
        }
        state.txs.push(record);
    }

    /// Deploys a contract by executing its init code in a new block.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::DeploymentFailed`] if the init code reverts or
    /// halts abnormally.
    pub fn deploy(&mut self, deployer: Address, init_code: Vec<u8>) -> Result<Address, ChainError> {
        let block = self.begin_block();
        let env = self.env();
        let mut inspector = RecordingInspector::new();
        let result = {
            let state = self.state_mut();
            let mut evm = Evm::with_inspector(&mut state.db, env, &mut inspector);
            evm.call(Message::create(deployer, init_code, U256::ZERO))
        };
        if !result.is_success() {
            let state = self.state_mut();
            state.db.rollback(proxion_evm::Snapshot::new(0));
            state.db.commit();
            self.head -= 1;
            return Err(ChainError::DeploymentFailed(result.halt.to_string()));
        }
        let address = result.created.expect("successful create has an address");
        self.finish_tx(
            block,
            deployer,
            address,
            Vec::new(),
            U256::ZERO,
            &result,
            &inspector,
        );
        self.record_deployment(block, address, deployer);
        self.commit_block();
        Ok(address)
    }

    /// Installs runtime bytecode directly at a fresh address, bypassing
    /// init-code execution. This is how the dataset generator deploys
    /// hundreds of thousands of contracts quickly; the resulting account is
    /// indistinguishable from a CREATE-deployed one to every analysis.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::AddressOccupied`] if the address has code.
    pub fn install(
        &mut self,
        deployer: Address,
        address: Address,
        runtime_code: Vec<u8>,
    ) -> Result<(), ChainError> {
        if !self.state.db.code(address).is_empty() {
            return Err(ChainError::AddressOccupied(address));
        }
        let block = self.begin_block();
        let state = self.state_mut();
        state.db.set_code(address, runtime_code);
        state.db.inc_nonce(address);
        state.db.commit();
        self.record_deployment(block, address, deployer);
        self.commit_block();
        Ok(())
    }

    /// Installs bytecode at a deterministic fresh address.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError::AddressOccupied`] (practically impossible
    /// for random addresses).
    pub fn install_new(
        &mut self,
        deployer: Address,
        runtime_code: Vec<u8>,
    ) -> Result<Address, ChainError> {
        let address = self.rng.next_address();
        self.install(deployer, address, runtime_code)?;
        Ok(address)
    }

    /// Destroys a live contract in a new block: code removed, every
    /// recorded storage slot zeroed (with history), and the account marked
    /// destroyed so [`Chain::is_alive`] turns false. This is the first half
    /// of a CREATE2 metamorphic swap; [`Chain::redeploy`] is the second.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NotAContract`] if the address has no live code.
    pub fn selfdestruct(&mut self, address: Address) -> Result<(), ChainError> {
        if self.state.db.code(address).is_empty() || self.state.db.is_destroyed(address) {
            return Err(ChainError::NotAContract(address));
        }
        let block = self.begin_block();
        let slots: Vec<U256> = self
            .state
            .storage_history
            .keys()
            .filter(|&&(a, _)| a == address)
            .map(|&(_, slot)| slot)
            .collect();
        {
            let state = self.state_mut();
            for slot in slots {
                state.db.set_storage(address, slot, U256::ZERO);
            }
            state.db.set_code(address, Vec::new());
            state.db.mark_destroyed(address);
        }
        self.record_state_changes(block);
        self.state_mut()
            .destructions
            .entry(address)
            .or_default()
            .push(block);
        self.commit_block();
        Ok(())
    }

    /// Installs fresh runtime bytecode at a previously destroyed address —
    /// the CREATE2 metamorphic pattern (same address, different code). The
    /// redeploy is appended to the deployment feed so incremental followers
    /// observe the address again and re-analyze it.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::AddressOccupied`] if the address still has
    /// live code (selfdestruct it first).
    pub fn redeploy(
        &mut self,
        deployer: Address,
        address: Address,
        runtime_code: Vec<u8>,
    ) -> Result<(), ChainError> {
        if !self.state.db.code(address).is_empty() {
            return Err(ChainError::AddressOccupied(address));
        }
        let block = self.begin_block();
        {
            let state = self.state_mut();
            state.db.resurrect(address);
            state.db.set_code(address, runtime_code);
            state.db.inc_nonce(address);
        }
        self.record_state_changes(block);
        self.record_deployment(block, address, deployer);
        self.commit_block();
        Ok(())
    }

    /// Block heights at which the address selfdestructed, in chain order.
    /// A non-empty answer for a live contract means it is metamorphic: the
    /// code observed today is not the code observed before the last entry.
    pub fn destructions_of(&self, address: Address) -> Vec<u64> {
        self.state
            .destructions
            .get(&address)
            .cloned()
            .unwrap_or_default()
    }

    /// Writes a storage slot directly (dataset setup), recording history.
    pub fn set_storage(&mut self, address: Address, slot: U256, value: U256) {
        let block = self.begin_block();
        self.state_mut().db.set_storage(address, slot, value);
        self.record_state_changes(block);
        self.commit_block();
    }

    /// Executes an external transaction in a new block and records it.
    pub fn transact(
        &mut self,
        from: Address,
        to: Address,
        input: Vec<u8>,
        value: U256,
    ) -> CallResult {
        let block = self.begin_block();
        let env = self.env();
        let mut inspector = RecordingInspector::new();
        let result = {
            let state = self.state_mut();
            let mut evm = Evm::with_inspector(&mut state.db, env, &mut inspector);
            evm.call(Message::eoa_call(from, to, input.clone()).with_value(value))
        };
        self.finish_tx(block, from, to, input, value, &result, &inspector);
        self.commit_block();
        result
    }

    /// Executes a transaction with a caller-provided inspector (used by
    /// analyses that need deeper visibility than [`TxRecord`] keeps).
    pub fn transact_inspected(
        &mut self,
        from: Address,
        to: Address,
        input: Vec<u8>,
        inspector: &mut dyn Inspector,
    ) -> CallResult {
        let block = self.begin_block();
        let env = self.env();
        let input_selector = selector_of(&input);
        let result = {
            let state = self.state_mut();
            let mut evm = Evm::with_inspector(&mut state.db, env, inspector);
            evm.call(Message::eoa_call(from, to, input.clone()))
        };
        let record = TxRecord {
            block,
            from,
            to,
            success: result.is_success(),
            input_selector,
            input,
            value: U256::ZERO,
            internal_calls: Vec::new(),
        };
        self.record_state_changes(block);
        self.record_tx(record);
        self.commit_block();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_tx(
        &mut self,
        block: u64,
        from: Address,
        to: Address,
        input: Vec<u8>,
        value: U256,
        result: &CallResult,
        inspector: &RecordingInspector,
    ) {
        let internal_calls = inspector
            .calls
            .iter()
            .map(|c| InternalCall {
                block,
                kind: c.kind,
                from: c.target,
                code_address: c.code_address,
            })
            .collect();
        self.record_state_changes(block);
        self.record_tx(TxRecord {
            block,
            from,
            to,
            success: result.is_success(),
            input_selector: selector_of(&input),
            input,
            value,
            internal_calls,
        });
    }

    // ---- archive-node query interface ----

    /// Runtime bytecode at the head block.
    pub fn code_at(&self, address: Address) -> Arc<Vec<u8>> {
        self.state.db.code(address)
    }

    /// `eth_getStorageAt(address, slot, block)`: the slot value as of the
    /// *end* of `block`.
    pub fn storage_at(&self, address: Address, slot: U256, block: u64) -> U256 {
        self.state.storage_at(address, slot, block)
    }

    /// Current (head) value of a storage slot.
    pub fn storage_latest(&self, address: Address, slot: U256) -> U256 {
        self.state.db.storage(address, slot)
    }

    /// Deployment metadata for a contract.
    pub fn deployment(&self, address: Address) -> Option<&DeploymentInfo> {
        self.state.deployments.get(&address)
    }

    /// A clonable handle for waiting on head-block advancement.
    pub fn head_watch(&self) -> HeadWatch {
        self.head_watch.clone()
    }

    /// Deployments with block height in `(after, up_to]`, in chain order:
    /// the incremental feed a block follower consumes after waking from
    /// [`HeadWatch::wait_past`].
    pub fn deployed_between(&self, after: u64, up_to: u64) -> &[(u64, Address)] {
        self.state.deployed_between(after, up_to)
    }

    /// All contract addresses ever deployed, in deployment order.
    pub fn contracts(&self) -> Vec<Address> {
        self.state.contracts()
    }

    /// Whether the contract is alive (deployed and not destroyed).
    pub fn is_alive(&self, address: Address) -> bool {
        self.state.is_alive(address)
    }

    /// All recorded transactions.
    pub fn transactions(&self) -> &[TxRecord] {
        &self.state.txs
    }

    /// The transactions a contract participated in (as external target or
    /// internal caller/callee).
    pub fn transactions_of(&self, address: Address) -> Vec<&TxRecord> {
        self.state.transactions_of(address)
    }

    /// Whether the contract appears in any transaction — the availability
    /// criterion that transaction-replay tools (CRUSH, Salehi et al.)
    /// require and hidden contracts lack.
    pub fn has_transactions(&self, address: Address) -> bool {
        self.state.has_transactions(address)
    }

    /// The full storage change history of one slot: `(block, value)` pairs.
    pub fn storage_history_of(&self, address: Address, slot: U256) -> Vec<(u64, U256)> {
        self.state
            .storage_history
            .get(&(address, slot))
            .cloned()
            .unwrap_or_default()
    }
}

/// The 4-byte selector prefix of call data, when long enough.
fn selector_of(input: &[u8]) -> Option<[u8; 4]> {
    if input.len() < 4 {
        return None;
    }
    let mut out = [0u8; 4];
    out.copy_from_slice(&input[..4]);
    Some(out)
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chain")
            .field("head", &self.head)
            .field("contracts", &self.state.deployments.len())
            .field("txs", &self.state.txs.len())
            .finish()
    }
}

impl ChainSource for Chain {
    fn head_block(&self) -> SourceResult<u64> {
        Ok(self.head)
    }
    fn code_at(&self, address: Address) -> SourceResult<Arc<Vec<u8>>> {
        Ok(Chain::code_at(self, address))
    }
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256> {
        Ok(self.state.storage_at(address, slot, block))
    }
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256> {
        Ok(Chain::storage_latest(self, address, slot))
    }
    fn balance_of(&self, address: Address) -> SourceResult<U256> {
        Ok(self.state.db.balance(address))
    }
    fn nonce_of(&self, address: Address) -> SourceResult<u64> {
        Ok(self.state.db.nonce(address))
    }
    fn block_hash(&self, number: u64) -> SourceResult<B256> {
        Ok(self.state.db.block_hash(number))
    }
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>> {
        Ok(self.state.deployments.get(&address).cloned())
    }
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>> {
        Ok(self.state.deployed_between(after, up_to).to_vec())
    }
    fn contracts(&self) -> SourceResult<Vec<Address>> {
        Ok(self.state.contracts())
    }
    fn is_alive(&self, address: Address) -> SourceResult<bool> {
        Ok(self.state.is_alive(address))
    }
    fn transactions(&self) -> SourceResult<Vec<TxRecord>> {
        Ok(self.state.txs.clone())
    }
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>> {
        Ok(self
            .state
            .transactions_of(address)
            .into_iter()
            .cloned()
            .collect())
    }
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        Ok(self.state.has_transactions(address))
    }
}

/// An immutable read view of a [`Chain`] at a fixed block height.
///
/// Captured in O(1) by [`Chain::snapshot`]; shares the chain's state via
/// copy-on-write, so holding a snapshot never blocks the writer (and the
/// writer never mutates what a snapshot observes). Queries about heights
/// past the captured head are answered as of the captured head, exactly
/// like asking an archive node about the future.
#[derive(Clone)]
pub struct ChainSnapshot {
    state: Arc<ChainState>,
    head: u64,
}

impl ChainSnapshot {
    /// The block height this snapshot was captured at.
    pub fn head_block(&self) -> u64 {
        self.head
    }

    /// Read-only access to the captured state database (for forks).
    pub fn db(&self) -> &MemoryDb {
        &self.state.db
    }
}

impl fmt::Debug for ChainSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainSnapshot")
            .field("head", &self.head)
            .field("contracts", &self.state.deployments.len())
            .finish()
    }
}

impl ChainSource for ChainSnapshot {
    fn head_block(&self) -> SourceResult<u64> {
        Ok(self.head)
    }
    fn code_at(&self, address: Address) -> SourceResult<Arc<Vec<u8>>> {
        Ok(self.state.db.code(address))
    }
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256> {
        // Clamp to the captured height: the snapshot knows nothing later.
        Ok(self.state.storage_at(address, slot, block.min(self.head)))
    }
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256> {
        Ok(self.state.db.storage(address, slot))
    }
    fn balance_of(&self, address: Address) -> SourceResult<U256> {
        Ok(self.state.db.balance(address))
    }
    fn nonce_of(&self, address: Address) -> SourceResult<u64> {
        Ok(self.state.db.nonce(address))
    }
    fn block_hash(&self, number: u64) -> SourceResult<B256> {
        Ok(self.state.db.block_hash(number))
    }
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>> {
        Ok(self.state.deployments.get(&address).cloned())
    }
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>> {
        Ok(self
            .state
            .deployed_between(after, up_to.min(self.head))
            .to_vec())
    }
    fn contracts(&self) -> SourceResult<Vec<Address>> {
        Ok(self.state.contracts())
    }
    fn is_alive(&self, address: Address) -> SourceResult<bool> {
        Ok(self.state.is_alive(address))
    }
    fn transactions(&self) -> SourceResult<Vec<TxRecord>> {
        Ok(self.state.txs.clone())
    }
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>> {
        Ok(self
            .state
            .transactions_of(address)
            .into_iter()
            .cloned()
            .collect())
    }
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        Ok(self.state.has_transactions(address))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingSource;
    use proxion_asm::{opcode as op, Assembler};

    /// Init code that deploys `runtime` via CODECOPY.
    fn init_for(runtime: &[u8]) -> Vec<u8> {
        let mut asm = Assembler::new();
        let body = asm.new_label();
        asm.push(U256::from(runtime.len()))
            .op(op::DUP1)
            .push_label(body)
            .op(op::PUSH0)
            .op(op::CODECOPY)
            .op(op::PUSH0)
            .op(op::RETURN)
            .label(body);
        // Note: label() emits a JUMPDEST, so copy from label+1.
        // Simpler: append runtime after an explicit marker offset.
        let mut code = asm.assemble().unwrap();
        // Patch: we copy from `body` which points at the JUMPDEST; replace
        // that trailing JUMPDEST with the runtime itself.
        code.pop();
        code.extend_from_slice(runtime);
        code
    }

    #[test]
    fn deploy_and_query_code() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let runtime = vec![op::STOP];
        let addr = chain.deploy(me, init_for(&runtime)).unwrap();
        assert_eq!(*chain.code_at(addr), runtime);
        assert!(chain.is_alive(addr));
        assert_eq!(chain.deployment(addr).unwrap().deployer, me);
        assert!(chain.contracts().contains(&addr));
    }

    #[test]
    fn failed_deployment_is_an_error() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        // Init code that reverts immediately.
        let err = chain.deploy(me, vec![op::PUSH0, op::PUSH0, op::REVERT]);
        assert!(matches!(err, Err(ChainError::DeploymentFailed(_))));
    }

    #[test]
    fn head_watch_sees_committed_blocks_only() {
        let mut chain = Chain::new();
        let watch = chain.head_watch();
        assert_eq!(watch.current(), Chain::GENESIS);

        let me = chain.new_funded_account();
        // A failed deployment rolls the head back and announces nothing.
        let _ = chain.deploy(me, vec![op::PUSH0, op::PUSH0, op::REVERT]);
        assert_eq!(watch.current(), Chain::GENESIS);
        assert!(watch
            .wait_past(Chain::GENESIS, Duration::from_millis(10))
            .is_none());

        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        let announced = watch
            .wait_past(Chain::GENESIS, Duration::from_secs(1))
            .expect("head advanced");
        assert_eq!(announced, chain.head_block());
        assert_eq!(chain.deployment(a).unwrap().block, announced);
    }

    #[test]
    fn head_watch_wakes_waiter_across_threads() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let watch = chain.head_watch();
        let start = chain.head_block();
        std::thread::scope(|s| {
            let waiter = s.spawn(move || watch.wait_past(start, Duration::from_secs(5)));
            chain.install_new(me, vec![op::STOP]).unwrap();
            let woke = waiter.join().unwrap().expect("woken by deployment");
            assert!(woke > start);
        });
    }

    #[test]
    fn deployed_between_feeds_only_new_contracts() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        let cut = chain.head_block();
        let b = chain.install_new(me, vec![op::STOP]).unwrap();
        let c = chain.install_new(me, vec![op::STOP]).unwrap();

        let all: Vec<Address> = chain
            .deployed_between(Chain::GENESIS, chain.head_block())
            .iter()
            .map(|&(_, a)| a)
            .collect();
        assert_eq!(all, vec![a, b, c]);

        let fresh: Vec<Address> = chain
            .deployed_between(cut, chain.head_block())
            .iter()
            .map(|&(_, a)| a)
            .collect();
        assert_eq!(fresh, vec![b, c]);

        assert!(chain
            .deployed_between(chain.head_block(), u64::MAX)
            .is_empty());
    }

    #[test]
    fn install_rejects_occupied_address() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        assert_eq!(
            chain.install(me, a, vec![op::STOP]),
            Err(ChainError::AddressOccupied(a))
        );
    }

    #[test]
    fn metamorphic_lifecycle_roundtrip() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        chain.set_storage(a, U256::ZERO, U256::from(7u64));
        let before = chain.head_block();

        chain.selfdestruct(a).unwrap();
        let died_at = chain.head_block();
        assert!(!chain.is_alive(a));
        assert!(chain.code_at(a).is_empty());
        assert_eq!(chain.storage_latest(a, U256::ZERO), U256::ZERO);
        // History still answers for the pre-destruction height.
        assert_eq!(chain.storage_at(a, U256::ZERO, before), U256::from(7u64));
        assert_eq!(chain.destructions_of(a), vec![died_at]);
        // A second selfdestruct has nothing to destroy.
        assert_eq!(chain.selfdestruct(a), Err(ChainError::NotAContract(a)));

        let new_code = vec![op::PUSH0, op::PUSH0, op::RETURN];
        chain.redeploy(me, a, new_code.clone()).unwrap();
        let reborn_at = chain.head_block();
        assert!(chain.is_alive(a));
        assert_eq!(*chain.code_at(a), new_code);
        // Storage was wiped, not inherited.
        assert_eq!(chain.storage_latest(a, U256::ZERO), U256::ZERO);
        // The redeploy shows up in the incremental feed followers consume.
        let fresh: Vec<Address> = chain
            .deployed_between(died_at, chain.head_block())
            .iter()
            .map(|&(_, addr)| addr)
            .collect();
        assert_eq!(fresh, vec![a]);
        assert_eq!(chain.deployment(a).unwrap().block, reborn_at);
        // The destruction record survives the rebirth.
        assert_eq!(chain.destructions_of(a), vec![died_at]);
    }

    #[test]
    fn redeploy_rejects_live_address() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        assert_eq!(
            chain.redeploy(me, a, vec![op::STOP]),
            Err(ChainError::AddressOccupied(a))
        );
    }

    #[test]
    fn storage_history_binary_searchable() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        let slot = U256::ZERO;
        chain.set_storage(a, slot, U256::from(1u64)); // some block b1
        let b1 = chain.head_block();
        chain.set_storage(a, slot, U256::from(2u64));
        let b2 = chain.head_block();

        // API-call accounting is a provider-layer concern now: route the
        // historical queries through a counting decorator.
        let counted = CountingSource::new(&chain);
        assert_eq!(counted.storage_at(a, slot, 0).unwrap(), U256::ZERO);
        assert_eq!(counted.storage_at(a, slot, b1).unwrap(), U256::from(1u64));
        assert_eq!(
            counted.storage_at(a, slot, b2 - 1).unwrap(),
            U256::from(1u64)
        );
        assert_eq!(counted.storage_at(a, slot, b2).unwrap(), U256::from(2u64));
        assert_eq!(
            counted.storage_at(a, slot, b2 + 100).unwrap(),
            U256::from(2u64)
        );
        assert_eq!(counted.counts().storage_at, 5);
        counted.reset();
        assert_eq!(counted.counts().storage_at, 0);
        assert_eq!(chain.storage_history_of(a, slot).len(), 2);
    }

    #[test]
    fn transact_records_storage_writes() {
        // Contract: SSTORE(0, CALLDATALOAD(0)); STOP.
        let mut asm = Assembler::new();
        asm.op(op::PUSH0)
            .op(op::CALLDATALOAD)
            .op(op::PUSH0)
            .op(op::SSTORE)
            .op(op::STOP);
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, asm.assemble().unwrap()).unwrap();

        let mut input = vec![0u8; 32];
        input[31] = 42;
        let r = chain.transact(me, a, input, U256::ZERO);
        assert!(r.is_success());
        let wrote_at = chain.head_block();
        assert_eq!(chain.storage_latest(a, U256::ZERO), U256::from(42u64));
        assert_eq!(chain.storage_at(a, U256::ZERO, wrote_at), U256::from(42u64));
        assert_eq!(chain.storage_at(a, U256::ZERO, wrote_at - 1), U256::ZERO);
        assert!(chain.has_transactions(a));
        assert_eq!(chain.transactions_of(a).len(), 1);
    }

    #[test]
    fn reverted_writes_leave_no_history() {
        // SSTORE then REVERT.
        let mut asm = Assembler::new();
        asm.push(U256::from(9u64))
            .op(op::PUSH0)
            .op(op::SSTORE)
            .op(op::PUSH0)
            .op(op::PUSH0)
            .op(op::REVERT);
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, asm.assemble().unwrap()).unwrap();
        let r = chain.transact(me, a, vec![], U256::ZERO);
        assert!(!r.is_success());
        assert!(chain.storage_history_of(a, U256::ZERO).is_empty());
        assert_eq!(chain.storage_latest(a, U256::ZERO), U256::ZERO);
        // The failed transaction is still recorded.
        assert!(chain.has_transactions(a));
        assert!(!chain.transactions_of(a)[0].success);
    }

    #[test]
    fn internal_calls_recorded() {
        // Proxy delegatecalls to logic.
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let logic = chain.install_new(me, vec![op::STOP]).unwrap();
        let mut proxy_asm = Assembler::new();
        proxy_asm
            .op(op::PUSH0)
            .op(op::PUSH0)
            .op(op::PUSH0)
            .op(op::PUSH0)
            .push(U256::from(logic))
            .op(op::GAS)
            .op(op::DELEGATECALL)
            .op(op::STOP);
        let proxy = chain
            .install_new(me, proxy_asm.assemble().unwrap())
            .unwrap();
        let r = chain.transact(me, proxy, vec![], U256::ZERO);
        assert!(r.is_success());
        // The logic contract has "transactions" through the internal call.
        assert!(chain.has_transactions(logic));
        let record = chain.transactions_of(logic)[0];
        assert_eq!(record.internal_calls.len(), 1);
        assert_eq!(record.internal_calls[0].kind, CallKind::DelegateCall);
        assert_eq!(record.internal_calls[0].from, proxy);
        assert_eq!(record.internal_calls[0].code_address, logic);
    }

    #[test]
    fn hidden_contract_has_no_transactions() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let hidden = chain.install_new(me, vec![op::STOP]).unwrap();
        assert!(!chain.has_transactions(hidden));
        assert!(chain.is_alive(hidden));
    }

    #[test]
    fn blocks_advance_per_transaction() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let start = chain.head_block();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        chain.transact(me, a, vec![], U256::ZERO);
        chain.transact(me, a, vec![], U256::ZERO);
        assert_eq!(chain.head_block(), start + 3);
        assert_eq!(chain.transactions().len(), 2);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();
        chain.set_storage(a, U256::ZERO, U256::from(1u64));

        let snap = chain.snapshot();
        let frozen_head = snap.head_block();

        // Advance the live chain well past the capture point.
        chain.set_storage(a, U256::ZERO, U256::from(2u64));
        let b = chain.install_new(me, vec![op::STOP]).unwrap();

        // The snapshot still answers as of its captured head.
        assert_eq!(snap.head_block(), frozen_head);
        assert_eq!(
            snap.storage_latest(a, U256::ZERO).unwrap(),
            U256::from(1u64)
        );
        // A query "past" the snapshot head clamps to the captured state.
        assert_eq!(
            snap.storage_at(a, U256::ZERO, frozen_head + 100).unwrap(),
            U256::from(1u64)
        );
        assert!(snap.code_at(b).unwrap().is_empty(), "b postdates snapshot");
        assert!(!snap.contracts().unwrap().contains(&b));

        // The live chain sees the new state.
        assert_eq!(chain.storage_latest(a, U256::ZERO), U256::from(2u64));
        assert!(chain.contracts().contains(&b));
    }

    #[test]
    fn snapshot_capture_is_cheap_and_writers_proceed() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![op::STOP]).unwrap();

        // Hold many snapshots; the writer still advances (copy-on-write
        // clones at most once per outstanding snapshot epoch).
        let snaps: Vec<ChainSnapshot> = (0..8).map(|_| chain.snapshot()).collect();
        chain.set_storage(a, U256::ZERO, U256::from(7u64));
        for snap in &snaps {
            assert_eq!(snap.storage_latest(a, U256::ZERO).unwrap(), U256::ZERO);
        }
        assert_eq!(chain.storage_latest(a, U256::ZERO), U256::from(7u64));
    }
}
