//! Deterministic fault injection for backend-robustness testing.
//!
//! Real archive-node access is unreliable: rate limits, timeouts, flaky
//! gateways. [`FaultySource`] wraps any backend and injects configurable
//! latency and *transient* errors, seeded through the deterministic
//! `proxion-primitives` RNG so a failing run replays exactly. Paired with
//! the pipeline's retry-with-backoff policy it lets tests prove analyses
//! degrade to typed [`SourceError`](crate::SourceError) outcomes instead
//! of panicking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use proxion_primitives::{Address, DetRng, B256, U256};

use crate::node::{DeploymentInfo, TxRecord};
use crate::source::{ChainSource, SourceError, SourceResult};

/// Injection parameters for a [`FaultySource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Added to every read (simulated network round-trip).
    pub latency: Duration,
    /// Probability in `[0, 1]` that a read fails with a transient error.
    pub failure_rate: f64,
    /// RNG seed: identical seeds inject identical fault sequences.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            latency: Duration::ZERO,
            failure_rate: 0.0,
            seed: 0xfa11,
        }
    }
}

/// A [`ChainSource`] decorator injecting deterministic latency and
/// transient failures into every forwarded read.
pub struct FaultySource<S> {
    inner: S,
    config: FaultConfig,
    rng: Mutex<DetRng>,
    injected: AtomicU64,
}

impl<S: ChainSource> FaultySource<S> {
    /// Wraps `inner` with the given injection parameters.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultySource {
            inner,
            rng: Mutex::new(DetRng::new(config.seed)),
            config,
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of transient errors injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Sleeps the configured latency, then rolls the die: `Err` on a hit.
    fn toll(&self, what: &str) -> SourceResult<()> {
        if !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        if self.config.failure_rate > 0.0 && self.rng.lock().next_bool(self.config.failure_rate) {
            let n = self.injected.fetch_add(1, Ordering::Relaxed) + 1;
            return Err(SourceError::Transient(format!(
                "injected fault #{n} during {what}"
            )));
        }
        Ok(())
    }
}

impl<S: ChainSource> ChainSource for FaultySource<S> {
    fn head_block(&self) -> SourceResult<u64> {
        self.toll("head_block")?;
        self.inner.head_block()
    }
    fn code_at(&self, address: Address) -> SourceResult<std::sync::Arc<Vec<u8>>> {
        self.toll("code_at")?;
        self.inner.code_at(address)
    }
    fn code_hash_at(&self, address: Address) -> SourceResult<B256> {
        self.toll("code_hash_at")?;
        self.inner.code_hash_at(address)
    }
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256> {
        self.toll("storage_at")?;
        self.inner.storage_at(address, slot, block)
    }
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256> {
        self.toll("storage_latest")?;
        self.inner.storage_latest(address, slot)
    }
    fn balance_of(&self, address: Address) -> SourceResult<U256> {
        self.toll("balance_of")?;
        self.inner.balance_of(address)
    }
    fn nonce_of(&self, address: Address) -> SourceResult<u64> {
        self.toll("nonce_of")?;
        self.inner.nonce_of(address)
    }
    fn block_hash(&self, number: u64) -> SourceResult<B256> {
        self.toll("block_hash")?;
        self.inner.block_hash(number)
    }
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>> {
        self.toll("deployment")?;
        self.inner.deployment(address)
    }
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>> {
        self.toll("deployed_between")?;
        self.inner.deployed_between(after, up_to)
    }
    fn contracts(&self) -> SourceResult<Vec<Address>> {
        self.toll("contracts")?;
        self.inner.contracts()
    }
    fn is_alive(&self, address: Address) -> SourceResult<bool> {
        self.toll("is_alive")?;
        self.inner.is_alive(address)
    }
    fn transactions(&self) -> SourceResult<Vec<TxRecord>> {
        self.toll("transactions")?;
        self.inner.transactions()
    }
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>> {
        self.toll("transactions_of")?;
        self.inner.transactions_of(address)
    }
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        self.toll("has_transactions")?;
        self.inner.has_transactions(address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chain;

    #[test]
    fn same_seed_injects_same_fault_sequence() {
        let chain = Chain::new();
        let cfg = FaultConfig {
            failure_rate: 0.5,
            seed: 42,
            ..FaultConfig::default()
        };
        let ghost = Address::from_low_u64(0x1);
        let run = |f: &FaultySource<&Chain>| -> Vec<bool> {
            (0..32).map(|_| f.code_at(ghost).is_err()).collect()
        };
        let a = run(&FaultySource::new(&chain, cfg));
        let b = run(&FaultySource::new(&chain, cfg));
        assert_eq!(a, b);
        assert!(a.iter().any(|&e| e), "some faults injected");
        assert!(a.iter().any(|&e| !e), "some reads survive");
    }

    #[test]
    fn zero_rate_never_fails_and_errors_are_transient() {
        let chain = Chain::new();
        let clean = FaultySource::new(&chain, FaultConfig::default());
        for _ in 0..16 {
            assert!(clean.head_block().is_ok());
        }
        let dirty = FaultySource::new(
            &chain,
            FaultConfig {
                failure_rate: 1.0,
                ..FaultConfig::default()
            },
        );
        let err = dirty.head_block().unwrap_err();
        assert!(err.is_transient());
        assert_eq!(dirty.injected_faults(), 1);
    }
}
