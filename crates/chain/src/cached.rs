//! Codehash-keyed caching decorator.
//!
//! Large-scale proxy studies dedupe work by bytecode hash — most deployed
//! contracts share one of a few thousand distinct bytecodes — so the
//! dominant backend cost is fetching the *same* bytes again and again.
//! [`CachedSource`] interns bytecode by `keccak256` (one [`Arc`] per
//! distinct code, shared across addresses), keeps a negative cache for
//! empty accounts (interning the empty code is the negative entry), and
//! memoizes historical `storage_at` reads, which are immutable facts.
//!
//! The cache tables ([`SourceCache`]) are shared behind an `Arc` so every
//! per-request snapshot wrapper in the service hits one warm cache.
//! Storage entries are keyed by `(address, slot, block)` — immutable facts.
//! The address→codehash binding is NOT immutable: accounts gain code after
//! being empty (the negative-cache staleness bug) and metamorphic CREATE2
//! contracts swap code at a fixed address. Each address therefore holds a
//! small set of block-stamped bindings (`codehash` + the head it was
//! observed at), each served only when the reader's head matches its
//! stamp and refreshed otherwise — so an advancing head re-observes
//! deployments and redeploys instead of replaying stale answers forever,
//! while readers pinned at *different* heights (snapshots during a
//! follower catch-up) each keep their own warm stamp instead of
//! perpetually evicting one another's.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use proxion_primitives::{keccak256, Address, B256, U256};

use crate::lru::{CacheStats, ShardedLru};
use crate::node::{DeploymentInfo, TxRecord};
use crate::source::{ChainSource, SourceResult};

/// Aggregated hit/miss statistics of a [`SourceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SourceCacheStats {
    /// The address→codehash table (bytecode fetch avoidance).
    pub code: CacheStats,
    /// The historical storage-read table.
    pub storage: CacheStats,
    /// Distinct bytecodes interned (including the empty code).
    pub interned_codes: usize,
}

/// The shared tables behind one or more [`CachedSource`] wrappers.
pub struct SourceCache {
    /// codehash → interned bytecode. Immutable facts; never evicted.
    intern: Mutex<HashMap<B256, Arc<Vec<u8>>>>,
    /// address → [(observed-at-head, codehash); ≤ CODE_STAMPS]. Each
    /// stamp is valid only for the exact head it was observed at; an
    /// unknown head refetches and adds a stamp (evicting the oldest past
    /// the cap). Bounds the negative cache by block height, makes
    /// metamorphic redeploys visible on the next head advance, and lets
    /// a few concurrent snapshot heights share the table without
    /// thrashing each other's binding.
    code_map: ShardedLru<Address, Vec<(u64, B256)>>,
    /// (address, slot, block) → historical value. Immutable facts.
    storage: ShardedLru<(Address, U256, u64), U256>,
}

impl SourceCache {
    /// Default capacity (entries) of each bounded table.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Block-stamped codehash bindings kept per address. Matches the
    /// handful of snapshot heights alive at once (head + a short catch-up
    /// tail); more would only delay noticing a stale binding's eviction.
    pub const CODE_STAMPS: usize = 4;

    /// Creates cache tables bounded at roughly `capacity` entries each.
    pub fn new(capacity: usize) -> Self {
        SourceCache {
            intern: Mutex::new(HashMap::new()),
            code_map: ShardedLru::new(capacity),
            storage: ShardedLru::new(capacity),
        }
    }

    /// Returns the canonical interned `Arc` for `code`, interning it if
    /// new. All addresses sharing a bytecode share one allocation.
    fn intern(&self, code: Arc<Vec<u8>>) -> (B256, Arc<Vec<u8>>) {
        let hash = keccak256(code.as_slice());
        let mut pool = self.intern.lock();
        let canonical = pool.entry(hash).or_insert(code);
        (hash, Arc::clone(canonical))
    }

    /// Current statistics.
    pub fn stats(&self) -> SourceCacheStats {
        SourceCacheStats {
            code: self.code_map.stats(),
            storage: self.storage.stats(),
            interned_codes: self.intern.lock().len(),
        }
    }
}

impl Default for SourceCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

/// A [`ChainSource`] decorator that answers repeated reads from a shared
/// [`SourceCache`] instead of the backend.
pub struct CachedSource<S> {
    inner: S,
    cache: Arc<SourceCache>,
}

impl<S: ChainSource> CachedSource<S> {
    /// Wraps `inner` with a private cache.
    pub fn new(inner: S) -> Self {
        Self::with_cache(inner, Arc::new(SourceCache::default()))
    }

    /// Wraps `inner` over an existing (possibly shared) cache.
    pub fn with_cache(inner: S, cache: Arc<SourceCache>) -> Self {
        CachedSource { inner, cache }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The cache tables (for stats export).
    pub fn cache(&self) -> &Arc<SourceCache> {
        &self.cache
    }

    /// The interned bytecode for `address` at the source head, resolving
    /// and interning on miss.
    fn lookup_code(&self, address: Address) -> SourceResult<(B256, Arc<Vec<u8>>)> {
        let head = self.inner.head_block()?;
        let stamps = self.cache.code_map.get(&address);
        if let Some(stamps) = &stamps {
            // A stamp is only trusted at the exact head it was observed
            // at; an unknown head revalidates against the backend. This is
            // what expires the negative cache (empty→deployed) and stale
            // metamorphic bindings (redeployed code) on head advance.
            if let Some(&(_, hash)) = stamps.iter().find(|&&(at, _)| at == head) {
                let pool = self.cache.intern.lock();
                if let Some(code) = pool.get(&hash) {
                    return Ok((hash, Arc::clone(code)));
                }
            }
        }
        let fetched = self.inner.code_at(address)?;
        let (hash, canonical) = self.cache.intern(fetched);
        // Re-stamp the freshest set: keep the other heights' bindings
        // (concurrent snapshots at different heads stay warm), newest
        // first so the cap evicts the oldest observation. A racing
        // lookup between `get` and `insert` can lose a stamp — harmless,
        // the next miss re-fetches and re-stamps.
        let mut stamps = stamps.unwrap_or_default();
        stamps.retain(|&(at, _)| at != head);
        stamps.insert(0, (head, hash));
        stamps.truncate(SourceCache::CODE_STAMPS);
        self.cache.code_map.insert(address, stamps);
        Ok((hash, canonical))
    }
}

impl<S: ChainSource> ChainSource for CachedSource<S> {
    fn head_block(&self) -> SourceResult<u64> {
        self.inner.head_block()
    }
    fn code_at(&self, address: Address) -> SourceResult<Arc<Vec<u8>>> {
        Ok(self.lookup_code(address)?.1)
    }
    fn code_hash_at(&self, address: Address) -> SourceResult<B256> {
        Ok(self.lookup_code(address)?.0)
    }
    fn storage_at(&self, address: Address, slot: U256, block: u64) -> SourceResult<U256> {
        let key = (address, slot, block);
        if let Some(value) = self.cache.storage.get(&key) {
            return Ok(value);
        }
        let value = self.inner.storage_at(address, slot, block)?;
        self.cache.storage.insert(key, value);
        Ok(value)
    }
    fn storage_latest(&self, address: Address, slot: U256) -> SourceResult<U256> {
        // Memoized via the historical table at the current head: a head
        // value *is* the value as of the end of the head block.
        let head = self.inner.head_block()?;
        self.storage_at(address, slot, head)
    }
    fn balance_of(&self, address: Address) -> SourceResult<U256> {
        self.inner.balance_of(address)
    }
    fn nonce_of(&self, address: Address) -> SourceResult<u64> {
        self.inner.nonce_of(address)
    }
    fn block_hash(&self, number: u64) -> SourceResult<B256> {
        self.inner.block_hash(number)
    }
    fn deployment(&self, address: Address) -> SourceResult<Option<DeploymentInfo>> {
        self.inner.deployment(address)
    }
    fn deployed_between(&self, after: u64, up_to: u64) -> SourceResult<Vec<(u64, Address)>> {
        self.inner.deployed_between(after, up_to)
    }
    fn contracts(&self) -> SourceResult<Vec<Address>> {
        self.inner.contracts()
    }
    fn is_alive(&self, address: Address) -> SourceResult<bool> {
        self.inner.is_alive(address)
    }
    fn transactions(&self) -> SourceResult<Vec<TxRecord>> {
        self.inner.transactions()
    }
    fn transactions_of(&self, address: Address) -> SourceResult<Vec<TxRecord>> {
        self.inner.transactions_of(address)
    }
    fn has_transactions(&self, address: Address) -> SourceResult<bool> {
        self.inner.has_transactions(address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chain, CountingSource};

    #[test]
    fn bytecode_interned_and_backend_spared() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        // Two addresses sharing one bytecode, one distinct.
        let code = vec![0x60, 0x00, 0x00];
        let a = chain.install_new(me, code.clone()).unwrap();
        let b = chain.install_new(me, code.clone()).unwrap();
        let c = chain.install_new(me, vec![0x00]).unwrap();

        let counted = CountingSource::new(&chain);
        let cached = CachedSource::new(&counted);

        let code_a = cached.code_at(a).unwrap();
        let code_b = cached.code_at(b).unwrap();
        let _ = cached.code_at(c).unwrap();
        // a and b share one interned allocation.
        assert!(Arc::ptr_eq(&code_a, &code_b));
        assert_eq!(cached.cache().stats().interned_codes, 2);

        // Re-reads hit the cache: the backend sees no further code fetches.
        let before = counted.counts().code_at;
        for _ in 0..5 {
            let _ = cached.code_at(a).unwrap();
            let _ = cached.code_hash_at(b).unwrap();
        }
        assert_eq!(counted.counts().code_at, before);
        assert!(cached.cache().stats().code.hits >= 10);
    }

    #[test]
    fn empty_accounts_negatively_cached() {
        let chain = Chain::new();
        let counted = CountingSource::new(&chain);
        let cached = CachedSource::new(&counted);
        let ghost = Address::from_low_u64(0xdead);

        assert!(cached.code_at(ghost).unwrap().is_empty());
        let fetches = counted.counts().code_at;
        for _ in 0..4 {
            assert!(cached.code_at(ghost).unwrap().is_empty());
        }
        assert_eq!(
            counted.counts().code_at,
            fetches,
            "empty account answered from the negative cache"
        );
        // The empty code is interned exactly once.
        assert_eq!(cached.cache().stats().interned_codes, 1);
    }

    #[test]
    fn negative_cache_expires_on_head_advance() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let cache = Arc::new(SourceCache::default());
        let target = Address::from_low_u64(0xbeef);

        // The address is empty and the emptiness is negatively cached.
        {
            let cached = CachedSource::with_cache(&chain, Arc::clone(&cache));
            assert!(cached.code_at(target).unwrap().is_empty());
            assert!(cached.code_at(target).unwrap().is_empty());
        }

        // A later block deploys code at the previously-empty address. The
        // head advanced, so the stale negative entry must not be served.
        chain.install(me, target, vec![0x42]).unwrap();
        let cached = CachedSource::with_cache(&chain, Arc::clone(&cache));
        assert_eq!(
            *cached.code_at(target).unwrap(),
            vec![0x42],
            "negative cache outlived the deployment"
        );
    }

    #[test]
    fn metamorphic_redeploy_invalidates_code_binding() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![0x01]).unwrap();
        let cache = Arc::new(SourceCache::default());

        {
            let cached = CachedSource::with_cache(&chain, Arc::clone(&cache));
            assert_eq!(*cached.code_at(a).unwrap(), vec![0x01]);
        }

        chain.selfdestruct(a).unwrap();
        chain.redeploy(me, a, vec![0x02]).unwrap();

        let cached = CachedSource::with_cache(&chain, Arc::clone(&cache));
        assert_eq!(
            *cached.code_at(a).unwrap(),
            vec![0x02],
            "stale code binding survived the redeploy"
        );
    }

    #[test]
    fn storage_reads_memoized() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![0x00]).unwrap();
        chain.set_storage(a, U256::ZERO, U256::from(7u64));
        let b = chain.head_block();

        let counted = CountingSource::new(&chain);
        let cached = CachedSource::new(&counted);
        for _ in 0..6 {
            assert_eq!(
                cached.storage_at(a, U256::ZERO, b).unwrap(),
                U256::from(7u64)
            );
        }
        assert_eq!(counted.counts().storage_at, 1);
        assert_eq!(cached.cache().stats().storage.hits, 5);
    }

    #[test]
    fn shared_cache_stays_correct_across_heads() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![0x01]).unwrap();

        let cache = Arc::new(SourceCache::default());

        // Snapshot at height 1; read the code through the shared cache.
        let snap_old = chain.snapshot();
        let at_old = CachedSource::with_cache(&snap_old, Arc::clone(&cache));
        let old_hash = at_old.code_hash_at(a).unwrap();

        // The contract self-destructs... simulated by reinstalling fresh
        // code at a new address and comparing across snapshot heights: the
        // (address, head) key must not leak values across heights.
        let b = chain.install_new(me, vec![0x02]).unwrap();
        let snap_new = chain.snapshot();
        let at_new = CachedSource::with_cache(&snap_new, Arc::clone(&cache));

        // `b` is empty at the old snapshot height but present at the new:
        assert!(at_old.code_at(b).unwrap().is_empty());
        assert_eq!(*at_new.code_at(b).unwrap(), vec![0x02]);
        // and reading through one wrapper never corrupted the other.
        assert!(at_old.code_at(b).unwrap().is_empty());
        assert_eq!(at_new.code_hash_at(a).unwrap(), old_hash);
    }

    #[test]
    fn concurrent_snapshot_heights_both_stay_warm() {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let a = chain.install_new(me, vec![0x01]).unwrap();

        let cache = Arc::new(SourceCache::default());
        let snap_old = chain.snapshot();
        let _ = chain.install_new(me, vec![0x02]).unwrap(); // advance head
        let snap_new = chain.snapshot();
        assert_ne!(snap_old.head_block(), snap_new.head_block());

        let counted_old = CountingSource::new(&snap_old);
        let counted_new = CountingSource::new(&snap_new);
        let at_old = CachedSource::with_cache(&counted_old, Arc::clone(&cache));
        let at_new = CachedSource::with_cache(&counted_new, Arc::clone(&cache));

        // Warm both heights once, then alternate: with a single stamp per
        // address each read would evict the other height's binding and
        // every lookup would miss; per-height stamps keep both warm.
        let _ = at_old.code_at(a).unwrap();
        let _ = at_new.code_at(a).unwrap();
        let (old_fetches, new_fetches) =
            (counted_old.counts().code_at, counted_new.counts().code_at);
        for _ in 0..5 {
            let _ = at_old.code_at(a).unwrap();
            let _ = at_new.code_at(a).unwrap();
        }
        assert_eq!(
            counted_old.counts().code_at,
            old_fetches,
            "old-height reads thrashed back to the backend"
        );
        assert_eq!(
            counted_new.counts().code_at,
            new_fetches,
            "new-height reads thrashed back to the backend"
        );
        assert!(cache.stats().code.hits >= 10);
    }
}
