//! A copy-on-write fork of the chain state.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proxion_evm::{Host, MemoryDb, Snapshot};
use proxion_primitives::{keccak256, Address, B256, U256};

/// A journaled overlay [`Host`] that reads through to a base [`MemoryDb`]
/// and keeps every write local. Dropping the fork discards all changes.
///
/// The proxy detector runs every probe execution on a fork so that the
/// emulation described in the paper (§4.2) can never corrupt the chain it
/// is analyzing.
///
/// # Examples
///
/// ```
/// use proxion_chain::ForkDb;
/// use proxion_evm::{Host, MemoryDb};
/// use proxion_primitives::{Address, U256};
///
/// let mut base = MemoryDb::new();
/// let a = Address::from_low_u64(1);
/// base.set_storage(a, U256::ZERO, U256::from(7u64));
///
/// let mut fork = ForkDb::new(&base);
/// assert_eq!(fork.storage(a, U256::ZERO), U256::from(7u64));
/// fork.set_storage(a, U256::ZERO, U256::from(9u64));
/// assert_eq!(fork.storage(a, U256::ZERO), U256::from(9u64));
/// assert_eq!(base.storage(a, U256::ZERO), U256::from(7u64));
/// ```
pub struct ForkDb<'a> {
    base: &'a MemoryDb,
    storage: HashMap<(Address, U256), U256>,
    balances: HashMap<Address, U256>,
    nonces: HashMap<Address, u64>,
    codes: HashMap<Address, Arc<Vec<u8>>>,
    destroyed: HashSet<Address>,
    journal: Vec<Entry>,
}

enum Entry {
    Storage(Address, U256, Option<U256>),
    Balance(Address, Option<U256>),
    Nonce(Address, Option<u64>),
    Code(Address, Option<Arc<Vec<u8>>>),
    Destroyed(Address, bool),
}

impl<'a> ForkDb<'a> {
    /// Creates a fork over `base`.
    pub fn new(base: &'a MemoryDb) -> Self {
        ForkDb {
            base,
            storage: HashMap::new(),
            balances: HashMap::new(),
            nonces: HashMap::new(),
            codes: HashMap::new(),
            destroyed: HashSet::new(),
            journal: Vec::new(),
        }
    }

    /// Number of overlay writes currently live (diagnostic).
    pub fn overlay_len(&self) -> usize {
        self.storage.len() + self.balances.len() + self.nonces.len() + self.codes.len()
    }
}

impl Host for ForkDb<'_> {
    fn exists(&self, address: Address) -> bool {
        !self.balance(address).is_zero()
            || self.nonce(address) > 0
            || !self.code(address).is_empty()
    }

    fn balance(&self, address: Address) -> U256 {
        self.balances
            .get(&address)
            .copied()
            .unwrap_or_else(|| self.base.balance(address))
    }

    fn nonce(&self, address: Address) -> u64 {
        self.nonces
            .get(&address)
            .copied()
            .unwrap_or_else(|| self.base.nonce(address))
    }

    fn code(&self, address: Address) -> Arc<Vec<u8>> {
        self.codes
            .get(&address)
            .cloned()
            .unwrap_or_else(|| self.base.code(address))
    }

    fn code_hash(&self, address: Address) -> B256 {
        match self.codes.get(&address) {
            Some(code) => keccak256(code.as_slice()),
            None => self.base.code_hash(address),
        }
    }

    fn storage(&self, address: Address, slot: U256) -> U256 {
        self.storage
            .get(&(address, slot))
            .copied()
            .unwrap_or_else(|| self.base.storage(address, slot))
    }

    fn set_storage(&mut self, address: Address, slot: U256, value: U256) {
        let prev = self.storage.insert((address, slot), value);
        self.journal.push(Entry::Storage(address, slot, prev));
    }

    fn set_balance(&mut self, address: Address, balance: U256) {
        let prev = self.balances.insert(address, balance);
        self.journal.push(Entry::Balance(address, prev));
    }

    fn inc_nonce(&mut self, address: Address) -> u64 {
        let current = self.nonce(address);
        let prev = self.nonces.insert(address, current + 1);
        self.journal.push(Entry::Nonce(address, prev));
        current
    }

    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        let prev = self.codes.insert(address, Arc::new(code));
        self.journal.push(Entry::Code(address, prev));
    }

    fn mark_destroyed(&mut self, address: Address) {
        let was = !self.destroyed.insert(address);
        self.journal.push(Entry::Destroyed(address, was));
    }

    fn block_hash(&self, number: u64) -> B256 {
        self.base.block_hash(number)
    }

    fn snapshot(&mut self) -> Snapshot {
        Snapshot::new(self.journal.len())
    }

    fn rollback(&mut self, snapshot: Snapshot) {
        let target = snapshot.index();
        while self.journal.len() > target {
            match self.journal.pop().expect("length checked") {
                Entry::Storage(a, s, prev) => match prev {
                    Some(v) => {
                        self.storage.insert((a, s), v);
                    }
                    None => {
                        self.storage.remove(&(a, s));
                    }
                },
                Entry::Balance(a, prev) => match prev {
                    Some(v) => {
                        self.balances.insert(a, v);
                    }
                    None => {
                        self.balances.remove(&a);
                    }
                },
                Entry::Nonce(a, prev) => match prev {
                    Some(v) => {
                        self.nonces.insert(a, v);
                    }
                    None => {
                        self.nonces.remove(&a);
                    }
                },
                Entry::Code(a, prev) => match prev {
                    Some(v) => {
                        self.codes.insert(a, v);
                    }
                    None => {
                        self.codes.remove(&a);
                    }
                },
                Entry::Destroyed(a, was) => {
                    if !was {
                        self.destroyed.remove(&a);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn reads_fall_through_to_base() {
        let mut base = MemoryDb::new();
        base.set_code(addr(1), vec![0xfe]);
        base.set_balance(addr(1), U256::from(5u64));
        base.set_storage(addr(1), U256::ONE, U256::from(11u64));
        let fork = ForkDb::new(&base);
        assert_eq!(*fork.code(addr(1)), vec![0xfe]);
        assert_eq!(fork.balance(addr(1)), U256::from(5u64));
        assert_eq!(fork.storage(addr(1), U256::ONE), U256::from(11u64));
        assert_eq!(fork.code_hash(addr(1)), base.code_hash(addr(1)));
        assert!(fork.exists(addr(1)));
        assert!(!fork.exists(addr(2)));
    }

    #[test]
    fn writes_stay_in_overlay() {
        let mut base = MemoryDb::new();
        base.set_storage(addr(1), U256::ZERO, U256::from(7u64));
        let mut fork = ForkDb::new(&base);
        fork.set_storage(addr(1), U256::ZERO, U256::from(9u64));
        fork.set_code(addr(2), vec![0x00]);
        assert_eq!(fork.storage(addr(1), U256::ZERO), U256::from(9u64));
        assert_eq!(*fork.code(addr(2)), vec![0x00]);
        assert_eq!(base.storage(addr(1), U256::ZERO), U256::from(7u64));
        assert!(base.code(addr(2)).is_empty());
        assert!(fork.overlay_len() > 0);
    }

    #[test]
    fn rollback_restores_overlay_and_base_reads() {
        let mut base = MemoryDb::new();
        base.set_storage(addr(1), U256::ZERO, U256::from(7u64));
        let mut fork = ForkDb::new(&base);
        let snap = fork.snapshot();
        fork.set_storage(addr(1), U256::ZERO, U256::from(9u64));
        fork.inc_nonce(addr(3));
        fork.set_balance(addr(3), U256::ONE);
        fork.mark_destroyed(addr(1));
        fork.rollback(snap);
        assert_eq!(fork.storage(addr(1), U256::ZERO), U256::from(7u64));
        assert_eq!(fork.nonce(addr(3)), 0);
        assert_eq!(fork.balance(addr(3)), U256::ZERO);
        assert_eq!(fork.overlay_len(), 0);
    }

    #[test]
    fn nested_rollback_layers() {
        let base = MemoryDb::new();
        let mut fork = ForkDb::new(&base);
        fork.set_storage(addr(1), U256::ZERO, U256::ONE);
        let snap = fork.snapshot();
        fork.set_storage(addr(1), U256::ZERO, U256::from(2u64));
        fork.rollback(snap);
        assert_eq!(fork.storage(addr(1), U256::ZERO), U256::ONE);
    }

    #[test]
    fn nonce_increments_on_top_of_base() {
        let mut base = MemoryDb::new();
        base.inc_nonce(addr(1));
        base.inc_nonce(addr(1));
        let mut fork = ForkDb::new(&base);
        assert_eq!(fork.inc_nonce(addr(1)), 2);
        assert_eq!(fork.nonce(addr(1)), 3);
        assert_eq!(base.nonce(addr(1)), 2);
    }

    #[test]
    fn code_hash_reflects_overlay_code() {
        let base = MemoryDb::new();
        let mut fork = ForkDb::new(&base);
        fork.set_code(addr(1), vec![1, 2, 3]);
        assert_eq!(fork.code_hash(addr(1)), keccak256([1, 2, 3]));
    }
}
