//! Structured transaction tracing — the `debug_traceTransaction`-style
//! facility replay-based tools (Salehi et al., CRUSH) consume on a real
//! node.

use proxion_evm::{CallKind, CallResult, Inspector, StorageAccess};
use proxion_primitives::{Address, U256};

/// One frame of a call trace, in pre-order (parents before children).
#[derive(Debug, Clone)]
pub struct TraceFrame {
    /// Call kind.
    pub kind: CallKind,
    /// Depth at which the call was issued (0 = issued by the top frame).
    pub depth: usize,
    /// `msg.sender` of the frame.
    pub caller: Address,
    /// Storage context.
    pub target: Address,
    /// Account whose code ran.
    pub code_address: Address,
    /// Input bytes.
    pub input: Vec<u8>,
    /// Value transferred.
    pub value: U256,
    /// Whether the frame succeeded.
    pub success: Option<bool>,
}

/// A full transaction trace: the call tree plus every storage access.
#[derive(Debug, Clone, Default)]
pub struct TxTrace {
    /// Internal call frames, in issue order (the top-level frame is not
    /// included; its parameters are the transaction itself).
    pub frames: Vec<TraceFrame>,
    /// Storage reads and writes, in execution order.
    pub storage: Vec<StorageAccess>,
    /// Number of opcodes executed.
    pub steps: u64,
}

impl TxTrace {
    /// All `DELEGATECALL` frames (what proxy-discovery tools scan for).
    pub fn delegate_frames(&self) -> impl Iterator<Item = &TraceFrame> {
        self.frames
            .iter()
            .filter(|f| f.kind == CallKind::DelegateCall)
    }

    /// The storage slots written, deduplicated, in first-write order.
    pub fn written_slots(&self) -> Vec<(Address, U256)> {
        let mut out: Vec<(Address, U256)> = Vec::new();
        for access in self.storage.iter().filter(|a| a.is_write) {
            if !out.contains(&(access.address, access.slot)) {
                out.push((access.address, access.slot));
            }
        }
        out
    }
}

/// The inspector that builds a [`TxTrace`].
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: TxTrace,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the builder and returns the trace.
    pub fn into_trace(self) -> TxTrace {
        self.trace
    }
}

impl Inspector for TraceBuilder {
    fn on_step(&mut self, _pc: usize, _op: u8, _depth: usize) {
        self.trace.steps += 1;
    }

    fn on_call(&mut self, record: &proxion_evm::CallRecord) {
        self.trace.frames.push(TraceFrame {
            kind: record.kind,
            depth: record.depth,
            caller: record.caller,
            target: record.target,
            code_address: record.code_address,
            input: record.input.clone(),
            value: record.value,
            success: None,
        });
    }

    fn on_call_end(&mut self, record_index: usize, result: &CallResult) {
        if let Some(frame) = self.trace.frames.get_mut(record_index) {
            frame.success = Some(result.is_success());
        }
    }

    fn on_storage(&mut self, access: StorageAccess) {
        self.trace.storage.push(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chain;

    #[test]
    fn trace_frames_empty_before_use() {
        let trace = TraceBuilder::new().into_trace();
        assert!(trace.frames.is_empty());
        assert_eq!(trace.steps, 0);
        assert!(trace.written_slots().is_empty());
    }

    #[test]
    fn written_slots_deduplicate_in_order() {
        let mut trace = TxTrace::default();
        let a = Address::from_low_u64(1);
        for (slot, write) in [(1u64, true), (2, true), (1, true), (3, false)] {
            trace.storage.push(StorageAccess {
                address: a,
                slot: U256::from(slot),
                value: U256::ZERO,
                is_write: write,
            });
        }
        assert_eq!(
            trace.written_slots(),
            vec![(a, U256::ONE), (a, U256::from(2u64))]
        );
    }

    #[test]
    fn end_to_end_trace_through_chain() {
        // Proxy delegates to logic which writes a slot; the trace must
        // show the delegate frame and the write.
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        // Logic: sstore(0, 7)
        let logic = chain
            .install_new(me, vec![0x60, 0x07, 0x5f, 0x55, 0x00])
            .unwrap();
        let proxy = chain
            .install_new(me, proxion_solc::templates::minimal_proxy_runtime(logic))
            .unwrap();
        let mut builder = TraceBuilder::new();
        let result =
            chain.transact_inspected(me, proxy, vec![0xab, 0xcd, 0xef, 0x01], &mut builder);
        assert!(result.is_success());
        let trace = builder.into_trace();
        assert_eq!(trace.delegate_frames().count(), 1);
        let frame = trace.delegate_frames().next().unwrap();
        assert_eq!(frame.target, proxy, "delegate runs in the proxy's context");
        assert_eq!(frame.code_address, logic);
        assert_eq!(frame.success, Some(true));
        assert_eq!(trace.written_slots(), vec![(proxy, U256::ZERO)]);
        assert!(trace.steps > 0);
    }
}
