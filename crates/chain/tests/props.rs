//! Property-based tests for the archive node: historical storage queries
//! must agree with a straightforward replay of the write log.

use proptest::prelude::*;
use proxion_chain::{Chain, ShardedLru};
use proxion_primitives::{Address, U256};

/// A write script: (slot, value) pairs applied in order, one block each.
fn write_script() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..4, any::<u8>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn storage_at_agrees_with_replay(script in write_script()) {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let target = chain.install_new(me, vec![0x00]).unwrap();
        // Apply the script; remember (block, slot, value).
        let mut log: Vec<(u64, u8, u8)> = Vec::new();
        for &(slot, value) in &script {
            chain.set_storage(target, U256::from(slot as u64), U256::from(value as u64));
            log.push((chain.head_block(), slot, value));
        }
        // At every block height, the archive answer must equal the value
        // of the last write at or before that height.
        let head = chain.head_block();
        for probe_block in 0..=head {
            for slot in 0u8..4 {
                let expected = log
                    .iter()
                    .filter(|&&(b, s, _)| s == slot && b <= probe_block)
                    .next_back()
                    .map(|&(_, _, v)| U256::from(v as u64))
                    .unwrap_or(U256::ZERO);
                let got = chain.storage_at(target, U256::from(slot as u64), probe_block);
                prop_assert_eq!(got, expected, "slot {} at block {}", slot, probe_block);
            }
        }
    }

    #[test]
    fn latest_matches_last_write(script in write_script()) {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let target = chain.install_new(me, vec![0x00]).unwrap();
        let mut last: [Option<u8>; 4] = [None; 4];
        for &(slot, value) in &script {
            chain.set_storage(target, U256::from(slot as u64), U256::from(value as u64));
            last[slot as usize] = Some(value);
        }
        for slot in 0u8..4 {
            let expected = last[slot as usize]
                .map(|v| U256::from(v as u64))
                .unwrap_or(U256::ZERO);
            prop_assert_eq!(chain.storage_latest(target, U256::from(slot as u64)), expected);
            // And the head-block archive query agrees with latest.
            prop_assert_eq!(
                chain.storage_at(target, U256::from(slot as u64), chain.head_block()),
                expected
            );
        }
    }

    #[test]
    fn history_is_change_compressed(script in write_script()) {
        // The per-slot history must never contain two consecutive entries
        // with the same value (redundant writes are compressed away).
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let target = chain.install_new(me, vec![0x00]).unwrap();
        for &(slot, value) in &script {
            chain.set_storage(target, U256::from(slot as u64), U256::from(value as u64));
        }
        for slot in 0u8..4 {
            let history = chain.storage_history_of(target, U256::from(slot as u64));
            for pair in history.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "blocks must be increasing");
                prop_assert_ne!(pair[0].1, pair[1].1, "consecutive values must differ");
            }
        }
    }

    #[test]
    fn resolver_finds_exactly_the_change_points(values in proptest::collection::vec(1u64..=6, 1..8)) {
        // Install a sequence of distinct "logic addresses" (values may
        // repeat consecutively; resolver sees the compressed history).
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let proxy = chain.install_new(me, vec![0x00]).unwrap();
        let slot = U256::ZERO;
        for (i, &v) in values.iter().enumerate() {
            chain.set_storage(proxy, slot, U256::from(Address::from_low_u64(v)));
            // Unrelated padding blocks.
            for _ in 0..(i % 3) + 1 {
                chain.set_storage(me, U256::MAX, U256::from(i));
            }
        }
        let resolver = proxion_core::LogicResolver::new();
        let history = resolver.resolve(&chain, proxy, slot).expect("in-memory chain is infallible");
        // Expected: consecutive-dedup of the value sequence, BUT the
        // resolver's same-endpoint pruning may merge a value that appears
        // at both ends of a range with everything in between. With unique
        // non-repeating histories the answer is exact:
        let mut dedup: Vec<u64> = Vec::new();
        for &v in &values {
            if dedup.last() != Some(&v) {
                dedup.push(v);
            }
        }
        let unique_history = dedup.iter().collect::<std::collections::BTreeSet<_>>().len() == dedup.len();
        if unique_history {
            let expected: Vec<Address> = dedup.iter().map(|&v| Address::from_low_u64(v)).collect();
            prop_assert_eq!(history.addresses, expected);
        } else {
            // The paper's uniqueness assumption is violated; the resolver
            // must still return a subset of the written values.
            prop_assert!(history
                .addresses
                .iter()
                .all(|a| values.iter().any(|&v| Address::from_low_u64(v) == *a)));
        }
    }

    /// Satellite check for the sharded LRU backing both the analysis
    /// cache and the provider-layer `CachedSource`: arbitrary
    /// insert/touch sequences must match a naive per-shard LRU reference
    /// model — same membership, same eviction victims — and the
    /// `CacheStats` counters must account for every operation. Keys are
    /// routed with the same hasher codehash-interned keys use
    /// (`shard_index`), so same-shard collisions exercise eviction.
    #[test]
    fn lru_order_matches_reference_model(ops in prop::collection::vec(lru_op_strategy(), 1..200)) {
        // Small capacity (2 per shard) makes evictions frequent.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(32);
        let per_shard = cache.per_shard_capacity();
        let mut model: Vec<ModelShard> = (0..cache.shard_count())
            .map(|_| ModelShard { entries: Vec::new(), capacity: per_shard, evictions: 0 })
            .collect();
        let (mut hits, mut misses) = (0u64, 0u64);

        for op in &ops {
            match *op {
                LruOp::Insert(k, v) => {
                    let k = k as u64;
                    cache.insert(k, v);
                    model[cache.shard_index(&k)].insert(k, v);
                }
                LruOp::Get(k) => {
                    let k = k as u64;
                    let got = cache.get(&k);
                    let expected = model[cache.shard_index(&k)].touch(k);
                    prop_assert_eq!(got, expected, "lookup of {} diverged", k);
                    if expected.is_some() { hits += 1 } else { misses += 1 }
                }
            }
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.misses, misses);
        prop_assert_eq!(
            stats.evictions,
            model.iter().map(|s| s.evictions).sum::<u64>()
        );
        prop_assert_eq!(
            stats.entries,
            model.iter().map(|s| s.entries.len()).sum::<usize>()
        );
        // Entries never exceed the per-shard bound times shard count.
        prop_assert!(stats.entries <= per_shard * cache.shard_count());
        // Every surviving model entry must still be resident (probe via a
        // second pass; touching the model symmetrically keeps the two
        // recency orders aligned while re-checking).
        for shard in &mut model {
            let keys: Vec<u64> = shard.entries.iter().map(|&(k, _)| k).collect();
            for k in keys {
                let expected = shard.touch(k);
                prop_assert_eq!(cache.get(&k), expected);
            }
        }
    }
}

/// One operation of the randomized LRU model check.
#[derive(Debug, Clone)]
enum LruOp {
    Insert(u8, u64),
    Get(u8),
}

fn lru_op_strategy() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| LruOp::Insert(k, v)),
        any::<u8>().prop_map(LruOp::Get),
    ]
}

/// A naive per-shard LRU reference: a vector in recency order
/// (front = least recently used), bounded at `capacity`.
struct ModelShard {
    entries: Vec<(u64, u64)>,
    capacity: usize,
    evictions: u64,
}

impl ModelShard {
    fn touch(&mut self, key: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        Some(self.entries.last().unwrap().1)
    }

    fn insert(&mut self, key: u64, value: u64) {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0); // least recently used
            self.evictions += 1;
        }
        self.entries.push((key, value));
    }
}
