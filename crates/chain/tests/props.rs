//! Property-based tests for the archive node: historical storage queries
//! must agree with a straightforward replay of the write log.

use proptest::prelude::*;
use proxion_chain::Chain;
use proxion_primitives::{Address, U256};

/// A write script: (slot, value) pairs applied in order, one block each.
fn write_script() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..4, any::<u8>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn storage_at_agrees_with_replay(script in write_script()) {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let target = chain.install_new(me, vec![0x00]).unwrap();
        // Apply the script; remember (block, slot, value).
        let mut log: Vec<(u64, u8, u8)> = Vec::new();
        for &(slot, value) in &script {
            chain.set_storage(target, U256::from(slot as u64), U256::from(value as u64));
            log.push((chain.head_block(), slot, value));
        }
        // At every block height, the archive answer must equal the value
        // of the last write at or before that height.
        let head = chain.head_block();
        for probe_block in 0..=head {
            for slot in 0u8..4 {
                let expected = log
                    .iter()
                    .filter(|&&(b, s, _)| s == slot && b <= probe_block)
                    .next_back()
                    .map(|&(_, _, v)| U256::from(v as u64))
                    .unwrap_or(U256::ZERO);
                let got = chain.storage_at(target, U256::from(slot as u64), probe_block);
                prop_assert_eq!(got, expected, "slot {} at block {}", slot, probe_block);
            }
        }
    }

    #[test]
    fn latest_matches_last_write(script in write_script()) {
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let target = chain.install_new(me, vec![0x00]).unwrap();
        let mut last: [Option<u8>; 4] = [None; 4];
        for &(slot, value) in &script {
            chain.set_storage(target, U256::from(slot as u64), U256::from(value as u64));
            last[slot as usize] = Some(value);
        }
        for slot in 0u8..4 {
            let expected = last[slot as usize]
                .map(|v| U256::from(v as u64))
                .unwrap_or(U256::ZERO);
            prop_assert_eq!(chain.storage_latest(target, U256::from(slot as u64)), expected);
            // And the head-block archive query agrees with latest.
            prop_assert_eq!(
                chain.storage_at(target, U256::from(slot as u64), chain.head_block()),
                expected
            );
        }
    }

    #[test]
    fn history_is_change_compressed(script in write_script()) {
        // The per-slot history must never contain two consecutive entries
        // with the same value (redundant writes are compressed away).
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let target = chain.install_new(me, vec![0x00]).unwrap();
        for &(slot, value) in &script {
            chain.set_storage(target, U256::from(slot as u64), U256::from(value as u64));
        }
        for slot in 0u8..4 {
            let history = chain.storage_history_of(target, U256::from(slot as u64));
            for pair in history.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "blocks must be increasing");
                prop_assert_ne!(pair[0].1, pair[1].1, "consecutive values must differ");
            }
        }
    }

    #[test]
    fn resolver_finds_exactly_the_change_points(values in proptest::collection::vec(1u64..=6, 1..8)) {
        // Install a sequence of distinct "logic addresses" (values may
        // repeat consecutively; resolver sees the compressed history).
        let mut chain = Chain::new();
        let me = chain.new_funded_account();
        let proxy = chain.install_new(me, vec![0x00]).unwrap();
        let slot = U256::ZERO;
        for (i, &v) in values.iter().enumerate() {
            chain.set_storage(proxy, slot, U256::from(Address::from_low_u64(v)));
            // Unrelated padding blocks.
            for _ in 0..(i % 3) + 1 {
                chain.set_storage(me, U256::MAX, U256::from(i));
            }
        }
        let resolver = proxion_core::LogicResolver::new();
        let history = resolver.resolve(&chain, proxy, slot);
        // Expected: consecutive-dedup of the value sequence, BUT the
        // resolver's same-endpoint pruning may merge a value that appears
        // at both ends of a range with everything in between. With unique
        // non-repeating histories the answer is exact:
        let mut dedup: Vec<u64> = Vec::new();
        for &v in &values {
            if dedup.last() != Some(&v) {
                dedup.push(v);
            }
        }
        let unique_history = dedup.iter().collect::<std::collections::BTreeSet<_>>().len() == dedup.len();
        if unique_history {
            let expected: Vec<Address> = dedup.iter().map(|&v| Address::from_low_u64(v)).collect();
            prop_assert_eq!(history.addresses, expected);
        } else {
            // The paper's uniqueness assumption is violated; the resolver
            // must still return a subset of the written values.
            prop_assert!(history
                .addresses
                .iter()
                .all(|a| values.iter().any(|&v| Address::from_low_u64(v) == *a)));
        }
    }
}
