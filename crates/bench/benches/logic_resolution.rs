//! Criterion benchmarks for Algorithm 1: binary-search logic resolution
//! versus the naive per-block linear scan it replaces (§6.1's 26-calls
//! claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxion_chain::Chain;
use proxion_core::LogicResolver;
use proxion_primitives::{Address, U256};

/// Builds a chain where the implementation slot changed 3 times across
/// `blocks` blocks of unrelated traffic.
fn chain_with_history(blocks: u64) -> (Chain, Address) {
    let mut chain = Chain::new();
    let me = chain.new_funded_account();
    let proxy = chain.install_new(me, vec![0x00]).unwrap();
    let per_segment = blocks / 4;
    for (i, logic) in (1..=3u64).enumerate() {
        chain.set_storage(
            proxy,
            U256::ZERO,
            U256::from(Address::from_low_u64(logic * 7)),
        );
        for _ in 0..per_segment {
            chain.set_storage(proxy, U256::ONE, U256::from(i as u64 + 1));
        }
    }
    (chain, proxy)
}

/// The naive approach Algorithm 1 replaces: query every block.
fn linear_scan(chain: &Chain, proxy: Address, slot: U256) -> Vec<U256> {
    let mut values = Vec::new();
    for block in 0..=chain.head_block() {
        let v = chain.storage_at(proxy, slot, block);
        if values.last() != Some(&v) {
            values.push(v);
        }
    }
    values
}

fn bench_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_resolution");
    for blocks in [512u64, 2048, 8192] {
        let (chain, proxy) = chain_with_history(blocks);
        let resolver = LogicResolver::new();
        group.bench_with_input(
            BenchmarkId::new("algorithm1_binary_search", blocks),
            &blocks,
            |b, _| b.iter(|| std::hint::black_box(resolver.resolve(&chain, proxy, U256::ZERO))),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_linear_scan", blocks),
            &blocks,
            |b, _| b.iter(|| std::hint::black_box(linear_scan(&chain, proxy, U256::ZERO))),
        );
    }
    group.finish();
}

fn bench_api_calls_report(c: &mut Criterion) {
    // Not a timing benchmark per se: assert and report the call-count
    // advantage at each scale, so `cargo bench` output carries the
    // paper's ~26-calls observation.
    let mut group = c.benchmark_group("logic_resolution_api_calls");
    group.sample_size(10);
    for blocks in [8192u64] {
        let (chain, proxy) = chain_with_history(blocks);
        let resolver = LogicResolver::new();
        let history = resolver
            .resolve(&chain, proxy, U256::ZERO)
            .expect("in-memory chain reads are infallible");
        println!(
            "[logic_resolution] {} blocks: {} getStorageAt calls (binary search) vs {} (linear)",
            blocks,
            history.api_calls,
            blocks + 1
        );
        group.bench_function(BenchmarkId::new("resolve", blocks), |b| {
            b.iter(|| std::hint::black_box(resolver.resolve(&chain, proxy, U256::ZERO)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resolution, bench_api_calls_report);
criterion_main!(benches);
