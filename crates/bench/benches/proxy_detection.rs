//! Criterion benchmarks for the §6.1 headline: per-contract proxy-check
//! latency across contract shapes, and bulk throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use proxion_chain::Chain;
use proxion_core::ProxyDetector;
use proxion_dataset::{Landscape, LandscapeConfig};
use proxion_primitives::{Address, U256};
use proxion_solc::{compile, templates, SlotSpec};

struct Fixtures {
    chain: Chain,
    minimal: Address,
    eip1967: Address,
    token: Address,
    library_user: Address,
}

fn fixtures() -> Fixtures {
    let mut chain = Chain::new();
    let me = chain.new_funded_account();
    let logic = chain
        .install_new(me, compile(&templates::simple_logic("L")).unwrap().runtime)
        .unwrap();
    let minimal = chain
        .install_new(me, templates::minimal_proxy_runtime(logic))
        .unwrap();
    let eip1967 = chain
        .install_new(me, compile(&templates::eip1967_proxy("P")).unwrap().runtime)
        .unwrap();
    chain.set_storage(
        eip1967,
        SlotSpec::eip1967_implementation().to_u256(),
        U256::from(logic),
    );
    let token = chain
        .install_new(me, compile(&templates::plain_token("T")).unwrap().runtime)
        .unwrap();
    let library_user = chain
        .install_new(
            me,
            compile(&templates::library_user("U", logic))
                .unwrap()
                .runtime,
        )
        .unwrap();
    Fixtures {
        chain,
        minimal,
        eip1967,
        token,
        library_user,
    }
}

fn bench_shapes(c: &mut Criterion) {
    let fx = fixtures();
    let detector = ProxyDetector::new();
    let mut group = c.benchmark_group("proxy_detection");
    for (name, address) in [
        ("minimal_proxy", fx.minimal),
        ("eip1967_proxy", fx.eip1967),
        ("plain_token", fx.token),
        ("library_user", fx.library_user),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(detector.check(&fx.chain, address)))
        });
    }
    group.finish();
}

fn bench_throughput(c: &mut Criterion) {
    let landscape = Landscape::generate(&LandscapeConfig {
        seed: 42,
        total_contracts: 200,
    });
    let detector = ProxyDetector::new();
    let addresses: Vec<Address> = landscape.contracts.iter().map(|c| c.address).collect();
    let mut group = c.benchmark_group("proxy_detection_bulk");
    group.throughput(Throughput::Elements(addresses.len() as u64));
    group.sample_size(20);
    group.bench_function("mixed_200_contracts", |b| {
        b.iter_batched(
            || addresses.clone(),
            |addrs| {
                let mut proxies = 0usize;
                for a in addrs {
                    if detector.check(&landscape.chain, a).is_proxy() {
                        proxies += 1;
                    }
                }
                std::hint::black_box(proxies)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_shapes, bench_throughput);
criterion_main!(benches);
