//! Telemetry overhead: the cost of the instrumentation itself.
//!
//! Three comparisons back the "near-zero always-on cost" claim:
//!
//! 1. `proxy_check/bare` vs `proxy_check/telemetry_disabled` — a detector
//!    carrying a disabled sink must match the un-instrumented baseline
//!    (the disabled path is one atomic load per would-be span).
//! 2. `proxy_check/telemetry_enabled` — full recording (spans + EVM
//!    profile + trace ring) should stay within ~5% of bare.
//! 3. `span/*` — the raw open/close cost of a single span, disabled,
//!    enabled-sampled and enabled-unsampled.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_chain::Chain;
use proxion_core::ProxyDetector;
use proxion_primitives::{Address, U256};
use proxion_solc::{compile, templates, SlotSpec};
use proxion_telemetry::{Stage, Telemetry, TelemetryConfig};

struct Fixture {
    chain: Chain,
    proxy: Address,
}

fn fixture() -> Fixture {
    let mut chain = Chain::new();
    let me = chain.new_funded_account();
    let logic = chain
        .install_new(me, compile(&templates::simple_logic("L")).unwrap().runtime)
        .unwrap();
    let proxy = chain
        .install_new(me, compile(&templates::eip1967_proxy("P")).unwrap().runtime)
        .unwrap();
    chain.set_storage(
        proxy,
        SlotSpec::eip1967_implementation().to_u256(),
        U256::from(logic),
    );
    Fixture { chain, proxy }
}

fn bench_proxy_check(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("proxy_check");

    let bare = ProxyDetector::new();
    group.bench_function("bare", |b| {
        b.iter(|| {
            assert!(bare.check(&fx.chain, fx.proxy).is_proxy());
        })
    });

    // ProxyDetector::new() carries a disabled sink already; construct one
    // explicitly so the comparison is self-describing.
    let disabled = ProxyDetector::new().with_telemetry(Arc::new(Telemetry::disabled()));
    group.bench_function("telemetry_disabled", |b| {
        b.iter(|| {
            assert!(disabled.check(&fx.chain, fx.proxy).is_proxy());
        })
    });

    let enabled =
        ProxyDetector::new().with_telemetry(Arc::new(Telemetry::new(TelemetryConfig::default())));
    group.bench_function("telemetry_enabled", |b| {
        b.iter(|| {
            assert!(enabled.check(&fx.chain, fx.proxy).is_proxy());
        })
    });

    // Sampling 1-in-64 keeps the aggregates exact while the trace ring
    // sees only a fraction of the span traffic.
    let sampled = ProxyDetector::new().with_telemetry(Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: 64,
        ..TelemetryConfig::default()
    })));
    group.bench_function("telemetry_sampled_64", |b| {
        b.iter(|| {
            assert!(sampled.check(&fx.chain, fx.proxy).is_proxy());
        })
    });

    group.finish();
}

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("span");

    let disabled = Telemetry::disabled();
    group.bench_function("disabled", |b| {
        b.iter(|| drop(disabled.span(Stage::Other, "bench")))
    });

    let enabled = Telemetry::new(TelemetryConfig::default());
    group.bench_function("enabled_sampled", |b| {
        b.iter(|| drop(enabled.span(Stage::Other, "bench")))
    });

    let sparse = Telemetry::new(TelemetryConfig {
        sample_every: 1024,
        ..TelemetryConfig::default()
    });
    group.bench_function("enabled_mostly_unsampled", |b| {
        b.iter(|| drop(sparse.span(Stage::Other, "bench")))
    });

    group.finish();
}

criterion_group!(benches, bench_proxy_check, bench_span);
criterion_main!(benches);
