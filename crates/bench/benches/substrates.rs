//! Criterion benchmarks for the substrates: U256 arithmetic, Keccak-256,
//! and raw interpreter throughput. These bound everything above them.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use proxion_asm::{opcode as op, Assembler};
use proxion_evm::{Env, Evm, Host, MemoryDb, Message};
use proxion_primitives::{keccak256, Address, U256};

fn bench_u256(c: &mut Criterion) {
    let a =
        U256::from_hex_str("0xdeadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff")
            .unwrap();
    let b =
        U256::from_hex_str("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
            .unwrap();
    let mut group = c.benchmark_group("u256");
    group.bench_function("mul", |bch| {
        bch.iter(|| std::hint::black_box(a) * std::hint::black_box(b))
    });
    group.bench_function("div_rem", |bch| {
        bch.iter(|| std::hint::black_box(a).div_rem(std::hint::black_box(b >> 128u32)))
    });
    group.bench_function("mulmod", |bch| {
        bch.iter(|| std::hint::black_box(a).mulmod(b, U256::MAX - U256::ONE))
    });
    group.bench_function("wrapping_pow", |bch| {
        bch.iter(|| std::hint::black_box(a).wrapping_pow(U256::from(65537u64)))
    });
    group.finish();
}

fn bench_keccak(c: &mut Criterion) {
    let mut group = c.benchmark_group("keccak256");
    for size in [32usize, 136, 1024, 16_384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}_bytes"), |b| {
            b.iter(|| std::hint::black_box(keccak256(&data)))
        });
    }
    group.finish();
}

/// A loop that stores and hashes memory 100 times.
fn interpreter_workload() -> Vec<u8> {
    let mut asm = Assembler::new();
    let top = asm.new_label();
    let done = asm.new_label();
    // i = 100 (counter on stack)
    asm.push(U256::from(100u64));
    asm.label(top);
    // if i == 0 goto done
    asm.op(op::DUP1).op(op::ISZERO).jumpi_to(done);
    // mem[0] = i; h = keccak(mem[0..32]); sstore(0, h)
    asm.op(op::DUP1)
        .op(op::PUSH0)
        .op(op::MSTORE)
        .push(U256::from(32u64))
        .op(op::PUSH0)
        .op(op::KECCAK256)
        .op(op::PUSH0)
        .op(op::SSTORE);
    // i -= 1
    asm.push(U256::ONE).op(op::SWAP1).op(op::SUB);
    asm.jump_to(top);
    asm.label(done);
    asm.op(op::STOP);
    asm.assemble().unwrap()
}

fn bench_interpreter(c: &mut Criterion) {
    let code = interpreter_workload();
    let target = Address::from_low_u64(0xbeef);
    let mut group = c.benchmark_group("evm_interpreter");
    group.bench_function("hash_store_loop_100", |b| {
        b.iter(|| {
            let mut db = MemoryDb::new();
            db.set_code(target, code.clone());
            let mut evm = Evm::new(&mut db, Env::default());
            let result = evm.call(Message::eoa_call(Address::from_low_u64(1), target, vec![]));
            assert!(result.is_success());
            std::hint::black_box(result.gas_used)
        })
    });
    group.finish();
}

fn bench_selector_mining(c: &mut Criterion) {
    // §2.3: the paper mined a free_ether_withdrawal() collision in ~600M
    // attempts / 1.5h (~111k hashes/s on a laptop). Report our rate and
    // the extrapolated full-collision time.
    let rate = proxion_solc::mining_hash_rate(50_000);
    let expected_attempts = 2f64.powi(32);
    println!(
        "[selector_mining] {:.0} candidate hashes/s -> expected 4-byte collision in {:.1} h (paper: ~1.5 h at ~111k/s)",
        rate,
        expected_attempts / rate / 3600.0
    );
    let mut group = c.benchmark_group("selector_mining");
    group.bench_function("mine_1byte_prefix", |b| {
        let target = proxion_primitives::selector("free_ether_withdrawal()");
        b.iter(|| {
            std::hint::black_box(proxion_solc::mine_selector_collision(
                target, "impl_", 1, 1_000_000,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_u256,
    bench_keccak,
    bench_interpreter,
    bench_selector_mining
);
criterion_main!(benches);
