//! Criterion benchmarks for the collision detectors (§6.1: 6.7 ms per
//! function-collision pair; storage pairs dominated by slicing +
//! validation).

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_chain::Chain;
use proxion_core::{FunctionCollisionDetector, StorageCollisionDetector};
use proxion_etherscan::Etherscan;
use proxion_primitives::{keccak256, Address, U256};
use proxion_solc::{compile, templates};

struct Pairs {
    chain: Chain,
    etherscan: Etherscan,
    verified_pair: (Address, Address),
    bytecode_pair: (Address, Address),
    audius_pair: (Address, Address),
}

fn pairs() -> Pairs {
    let mut chain = Chain::new();
    let mut etherscan = Etherscan::new();
    let me = chain.new_funded_account();
    let install = |chain: &mut Chain,
                   etherscan: &mut Etherscan,
                   spec: &proxion_solc::ContractSpec,
                   verify: bool| {
        let compiled = compile(spec).unwrap();
        let hash = keccak256(&compiled.runtime);
        let addr = chain.install_new(me, compiled.runtime).unwrap();
        etherscan.register_contract(addr, hash);
        if verify {
            etherscan.register_verified(addr, compiled.source);
        }
        addr
    };

    let wy_proxy_v = {
        let spec = templates::ownable_delegate_proxy("P1");
        install(&mut chain, &mut etherscan, &spec, true)
    };
    let wy_logic_v = {
        let spec = templates::wyvern_logic("L1");
        install(&mut chain, &mut etherscan, &spec, true)
    };
    chain.set_storage(wy_proxy_v, U256::ONE, U256::from(wy_logic_v));

    let (hp, hl) = templates::honeypot_pair(Address::from_low_u64(9));
    let hp_logic = install(&mut chain, &mut etherscan, &hl, false);
    let hp_proxy = install(&mut chain, &mut etherscan, &hp, false);
    chain.set_storage(hp_proxy, U256::ONE, U256::from(hp_logic));

    let (ap, al) = templates::audius_pair();
    let a_logic = install(&mut chain, &mut etherscan, &al, false);
    let a_proxy = install(&mut chain, &mut etherscan, &ap, false);
    let mut owner = [0u8; 20];
    owner[10] = 0x11;
    chain.set_storage(a_proxy, U256::ZERO, U256::from_be_slice(&owner));
    chain.set_storage(a_proxy, U256::ONE, U256::from(a_logic));

    Pairs {
        chain,
        etherscan,
        verified_pair: (wy_proxy_v, wy_logic_v),
        bytecode_pair: (hp_proxy, hp_logic),
        audius_pair: (a_proxy, a_logic),
    }
}

fn bench_function_collisions(c: &mut Criterion) {
    let fx = pairs();
    let detector = FunctionCollisionDetector::new();
    let mut group = c.benchmark_group("function_collision");
    group.bench_function("source_mode_pair", |b| {
        b.iter(|| {
            std::hint::black_box(detector.check_pair(
                &fx.chain,
                &fx.etherscan,
                fx.verified_pair.0,
                fx.verified_pair.1,
            ))
        })
    });
    group.bench_function("bytecode_mode_pair", |b| {
        b.iter(|| {
            std::hint::black_box(detector.check_pair(
                &fx.chain,
                &fx.etherscan,
                fx.bytecode_pair.0,
                fx.bytecode_pair.1,
            ))
        })
    });
    group.finish();
}

fn bench_storage_collisions(c: &mut Criterion) {
    let fx = pairs();
    let detector = StorageCollisionDetector::new();
    let mut group = c.benchmark_group("storage_collision");
    group.bench_function("clean_pair", |b| {
        b.iter(|| {
            std::hint::black_box(detector.check_pair(
                &fx.chain,
                fx.verified_pair.0,
                fx.verified_pair.1,
            ))
        })
    });
    group.bench_function("audius_pair_with_validation", |b| {
        b.iter(|| {
            std::hint::black_box(detector.check_pair(&fx.chain, fx.audius_pair.0, fx.audius_pair.1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_function_collisions, bench_storage_collisions);
criterion_main!(benches);
