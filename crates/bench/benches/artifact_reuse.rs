//! Benchmark for the per-codehash artifact store (DESIGN.md "Artifact
//! layer"): a many-proxies/few-logics population where most contracts
//! share one of a handful of bytecodes, analyzed with the interning
//! store enabled vs. a pass-through store that re-derives disassembly,
//! CFG, dispatcher, and storage-layout artifacts for every address.
//!
//! Before timing anything the harness asserts the store's accounting:
//! every contract interns exactly once, so over a full `analyze_all`
//! `hits == N_contracts - N_unique_codehashes` and
//! `misses == N_unique_codehashes`.

use std::collections::BTreeSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_chain::Chain;
use proxion_core::{ArtifactStore, Pipeline, PipelineConfig};
use proxion_etherscan::Etherscan;
use proxion_primitives::keccak256;
use proxion_solc::{compile, templates};

/// Distinct logic contracts; everything else is a proxy to one of them.
const LOGICS: usize = 4;
/// Minimal proxies, round-robined over the logics. Proxies that share a
/// logic share their runtime bytecode verbatim.
const PROXIES: usize = 300;

fn build_world() -> (Chain, Etherscan) {
    let mut chain = Chain::new();
    let deployer = chain.new_funded_account();
    let logics: Vec<_> = (0..LOGICS)
        .map(|i| {
            let spec = templates::simple_logic(&format!("Logic{i}"));
            chain
                .install_new(deployer, compile(&spec).unwrap().runtime)
                .unwrap()
        })
        .collect();
    for i in 0..PROXIES {
        chain
            .install_new(
                deployer,
                templates::minimal_proxy_runtime(logics[i % LOGICS]),
            )
            .unwrap();
    }
    (chain, Etherscan::new())
}

fn config() -> PipelineConfig {
    PipelineConfig {
        parallelism: 1,
        resolve_history: false,
        check_collisions: false,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    }
}

fn bench_artifact_reuse(c: &mut Criterion) {
    let (chain, etherscan) = build_world();

    // Accounting check (the acceptance criterion for the store): one
    // intern per analyzed contract, one miss per distinct codehash.
    let pipeline = Pipeline::new(config());
    let report = pipeline.analyze_all(&chain, &etherscan).unwrap();
    let unique: BTreeSet<_> = chain
        .contracts()
        .into_iter()
        .map(|address| keccak256(chain.code_at(address).as_slice()))
        .collect();
    let stats = pipeline.artifacts().stats();
    assert_eq!(
        stats.misses,
        unique.len() as u64,
        "one artifact-store miss per distinct codehash"
    );
    assert_eq!(
        stats.hits,
        (report.total() - unique.len()) as u64,
        "every repeated codehash must hit the artifact store"
    );

    let mut group = c.benchmark_group("artifact_reuse");
    group.sample_size(10);
    group.bench_function("store_enabled", |b| {
        b.iter(|| {
            let pipeline = Pipeline::new(config());
            std::hint::black_box(pipeline.analyze_all(&chain, &etherscan).unwrap())
        })
    });
    group.bench_function("store_passthrough", |b| {
        b.iter(|| {
            let pipeline =
                Pipeline::new(config()).with_artifacts(Arc::new(ArtifactStore::passthrough()));
            std::hint::black_box(pipeline.analyze_all(&chain, &etherscan).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_artifact_reuse);
criterion_main!(benches);
