//! Criterion benchmarks for detection over the adversarial population —
//! what beacon indirection, multi-hop chains, metamorphic redeploys and
//! dirty bytecode cost per contract, next to the standard-EIP landscape
//! the paper's §6.1 throughput numbers are measured on.

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_core::{Pipeline, PipelineConfig, ProxyDetector};
use proxion_dataset::{AdversarialCorpus, Landscape, LandscapeConfig};

fn adversarial_detection(c: &mut Criterion) {
    let corpus = AdversarialCorpus::generate(0xadbe, 4);
    let entries: Vec<_> = corpus.cases.iter().map(|case| case.entry).collect();
    let standard = Landscape::generate(&LandscapeConfig {
        seed: 0xadbe,
        total_contracts: entries.len(),
    });
    let standard_entries: Vec<_> = standard.contracts.iter().map(|c| c.address).collect();

    // Raw detector sweeps: adversarial vs standard population of the
    // same size, no caching between iterations.
    let detector = ProxyDetector::new();
    c.bench_function("detect_adversarial_population", |b| {
        b.iter(|| {
            entries
                .iter()
                .filter(|&&a| detector.check(&corpus.chain, a).is_proxy())
                .count()
        })
    });
    c.bench_function("detect_standard_population", |b| {
        b.iter(|| {
            standard_entries
                .iter()
                .filter(|&&a| detector.check(&standard.chain, a).is_proxy())
                .count()
        })
    });

    // Full pipeline over the adversarial corpus: delegation-graph walk,
    // upgradeability classification, and collision checks included. A
    // fresh pipeline per iteration so verdict caches never amortize.
    c.bench_function("pipeline_adversarial_population", |b| {
        b.iter(|| {
            let pipeline = Pipeline::new(PipelineConfig {
                parallelism: 1,
                resolve_history: false,
                check_collisions: true,
                check_historical_pairs: false,
                ..PipelineConfig::default()
            });
            pipeline
                .analyze(&corpus.chain, &corpus.etherscan, &entries)
                .proxy_count()
        })
    });
}

criterion_group!(benches, adversarial_detection);
criterion_main!(benches);
