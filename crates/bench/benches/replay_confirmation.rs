//! Criterion benchmarks for the replay engine: what execution-backed
//! confirmation costs per pair, against the static verdict it upgrades.
//!
//! The workload is the six-case ground-truth exploit corpus; each
//! benchmark answers "what does one flagged pair cost to confirm?" for a
//! different probe mix, so the static-vs-confirmed gap (Table 4's
//! execution budget) is measured on the same pairs the accuracy tests
//! use.

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_chain::ChainSource;
use proxion_core::{
    DelegationChain, FunctionCollisionDetector, ImplSource, ProxyStandard, StorageCollisionDetector,
};
use proxion_dataset::ExploitCorpus;
use proxion_replay::ReplayEngine;

fn replay_confirmation(c: &mut Criterion) {
    let corpus = ExploitCorpus::generate(0xbe9c);
    let snapshot = corpus.chain.snapshot();
    let engine = ReplayEngine::new();
    let head = ChainSource::head_block(&snapshot).unwrap();
    let chain_for = |proxy, slot, logic| {
        DelegationChain::single_hop(
            proxy,
            snapshot.code_hash_at(proxy).unwrap(),
            ImplSource::StorageSlot(slot),
            ProxyStandard::Other,
            logic,
            head,
        )
    };

    // The full confirmation pass: all three probes over all six cases.
    c.bench_function("replay_confirm_corpus", |b| {
        b.iter(|| {
            let mut confirmed = 0;
            for case in &corpus.cases {
                let delegation = chain_for(case.proxy, case.impl_slot, case.logic);
                let verdict = engine
                    .confirm_pair(
                        &snapshot,
                        case.proxy,
                        case.logic,
                        Some(&delegation),
                        &case.collided_selectors,
                    )
                    .unwrap();
                if verdict.confirmed {
                    confirmed += 1;
                }
            }
            assert_eq!(confirmed, 3);
            confirmed
        })
    });

    // The static verdict on the same pairs — the baseline the replay
    // engine's cost is compared against.
    let functions = FunctionCollisionDetector::new();
    let storage = StorageCollisionDetector::new();
    c.bench_function("static_verdict_corpus", |b| {
        b.iter(|| {
            let mut flagged = 0;
            for case in &corpus.cases {
                let f = functions
                    .check_pair(&snapshot, &corpus.etherscan, case.proxy, case.logic)
                    .unwrap();
                let s = storage
                    .check_pair(&snapshot, case.proxy, case.logic)
                    .unwrap();
                if f.has_collisions() || s.has_exploitable() {
                    flagged += 1;
                }
            }
            flagged
        })
    });

    // Individual probes, one exploitable case each.
    let uninit = &corpus.cases[0];
    c.bench_function("probe_uninitialized", |b| {
        b.iter(|| engine.probe_uninitialized(&snapshot, uninit.proxy).unwrap())
    });
    let upgrade = &corpus.cases[2];
    c.bench_function("regression_replay", |b| {
        b.iter(|| {
            engine
                .regression_replay(&snapshot, upgrade.proxy, upgrade.logic)
                .unwrap()
        })
    });
    let honeypot = &corpus.cases[4];
    let honeypot_chain = chain_for(honeypot.proxy, honeypot.impl_slot, honeypot.logic);
    c.bench_function("check_fake_proxy", |b| {
        b.iter(|| {
            engine
                .check_fake_proxy(
                    &snapshot,
                    honeypot.proxy,
                    honeypot.logic,
                    Some(&honeypot_chain),
                    &honeypot.collided_selectors,
                )
                .unwrap()
        })
    });
}

criterion_group!(benches, replay_confirmation);
criterion_main!(benches);
