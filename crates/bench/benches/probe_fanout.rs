//! Criterion benchmark for the checkpointed probe session: what a
//! 16-probe calldata fan-out costs through one warm [`ProbeSession`]
//! versus sixteen fresh host/interpreter pairs.
//!
//! This is the execution shape of every multi-probe analysis in the
//! pipeline — the detector's crafted-calldata gate, the diamond prober's
//! selector loop, the replay engine's probe sets — so the session-vs-
//! fresh gap here is the per-probe setup cost the session refactor
//! amortizes. Two workloads bound the range:
//!
//! * `small` — an exploit-corpus proxy with compact template bytecode,
//!   where probe *execution* dominates and the session saves only the
//!   per-probe host/interpreter setup.
//! * `maxcode` — an EIP-1967 proxy delegating to a 24 576-byte logic
//!   (the mainnet `EIP-170` ceiling), where the fresh path re-pays
//!   jumpdest analysis of the full code on every probe while the
//!   session's cache pays it once.
//!
//! Headline numbers are recorded in `BENCH_probes.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_chain::{Chain, ChainSnapshot, ChainSource, SourceHost};
use proxion_dataset::ExploitCorpus;
use proxion_evm::{Evm, Message, ProbeSession, RecordingInspector};
use proxion_primitives::{Address, U256};
use proxion_solc::{compile, templates, SlotSpec};

const FANOUT: usize = 16;
/// The EIP-170 runtime code ceiling enforced on mainnet.
const MAX_CODE_SIZE: usize = 24_576;

/// Sixteen calldata variants: distinct selectors, realistic 32-byte
/// argument padding — the same shape the detector and prober craft.
fn probe_inputs() -> Vec<Vec<u8>> {
    (0..FANOUT as u8)
        .map(|i| {
            let mut data = vec![0xfe, 0xed, i, 0x01];
            data.extend_from_slice(&[i; 32]);
            data
        })
        .collect()
}

/// An EIP-1967 proxy whose logic runtime is padded to the mainnet code
/// ceiling — the dispatcher rejects crafted selectors quickly, but every
/// fresh interpreter must still jumpdest-scan all 24 KiB first.
fn max_code_deployment() -> (Chain, Address) {
    let mut chain = Chain::new();
    let deployer = chain.new_funded_account();
    let logic = compile(&templates::simple_logic("BigLogic")).expect("template compiles");
    let mut runtime = logic.runtime;
    runtime.resize(MAX_CODE_SIZE, 0x00);
    let logic_addr = chain.install_new(deployer, runtime).expect("installs");
    let proxy = compile(&templates::eip1967_proxy("BigProxy")).expect("template compiles");
    let proxy_addr = chain
        .install_new(deployer, proxy.runtime)
        .expect("installs");
    chain.set_storage(
        proxy_addr,
        SlotSpec::eip1967_implementation().to_u256(),
        U256::from(logic_addr),
    );
    (chain, proxy_addr)
}

fn bench_pair(c: &mut Criterion, label: &str, snapshot: &ChainSnapshot, target: Address) {
    let caller = Address::from_low_u64(0xbe7c_0001);
    let inputs = probe_inputs();

    // One warm session: host overlay, frame-scratch pool and jumpdest
    // cache are set up once; every probe rolls back to the checkpoint.
    c.bench_function(&format!("probe_fanout_16_session_{label}"), |b| {
        b.iter(|| {
            let env = snapshot.env().unwrap();
            let mut fork = SourceHost::new(snapshot);
            let mut session = ProbeSession::new(&mut fork, env);
            let mut delegated = 0usize;
            for input in &inputs {
                let mut inspector = RecordingInspector::new();
                let _ = session.run_probe_with(
                    Message::eoa_call(caller, target, input.clone()),
                    &mut inspector,
                );
                delegated += usize::from(inspector.delegate_calls().next().is_some());
            }
            delegated
        })
    });

    // The pre-session shape: a brand-new overlay and interpreter per
    // probe — every probe re-pays host setup, code fetch, jumpdest
    // analysis and stack/memory allocation.
    c.bench_function(&format!("probe_fanout_16_fresh_{label}"), |b| {
        b.iter(|| {
            let mut delegated = 0usize;
            for input in &inputs {
                let env = snapshot.env().unwrap();
                let mut fork = SourceHost::new(snapshot);
                let mut inspector = RecordingInspector::new();
                let _ = {
                    let mut evm = Evm::with_inspector(&mut fork, env, &mut inspector);
                    evm.call(Message::eoa_call(caller, target, input.clone()))
                };
                delegated += usize::from(inspector.delegate_calls().next().is_some());
            }
            delegated
        })
    });
}

fn probe_fanout(c: &mut Criterion) {
    let corpus = ExploitCorpus::generate(0xbe9c);
    let snapshot = corpus.chain.snapshot();
    bench_pair(c, "small", &snapshot, corpus.cases[0].proxy);

    let (chain, proxy) = max_code_deployment();
    let snapshot = chain.snapshot();
    bench_pair(c, "maxcode", &snapshot, proxy);
}

criterion_group!(benches, probe_fanout);
criterion_main!(benches);
