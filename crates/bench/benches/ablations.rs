//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * dispatcher-pattern selector extraction vs. naive `PUSH4` scanning
//!   (the §3.1 false-positive trap);
//! * the bytecode-hash deduplication in the pipeline (the optimization
//!   that makes the 36M-contract scan feasible, §6.1);
//! * provenance-tagged emulation vs. the plain disassembly gate.

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_core::{ArtifactStore, Pipeline, PipelineConfig, ProxyDetector};
use proxion_dataset::{Landscape, LandscapeConfig};
use proxion_disasm::{extract_dispatcher_selectors, naive_push4_selectors, Cfg, Disassembly};
use proxion_solc::{compile, templates};

fn bench_selector_extraction(c: &mut Criterion) {
    let compiled = compile(&templates::plain_token("T")).unwrap();
    let disasm = Disassembly::new(&compiled.runtime);
    let cfg = Cfg::new(&disasm);
    let mut group = c.benchmark_group("ablation_selector_extraction");
    group.bench_function("dispatcher_walk", |b| {
        b.iter(|| std::hint::black_box(extract_dispatcher_selectors(&disasm)))
    });
    group.bench_function("naive_push4", |b| {
        b.iter(|| std::hint::black_box(naive_push4_selectors(&disasm, &cfg)))
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let landscape = Landscape::generate(&LandscapeConfig {
        seed: 99,
        total_contracts: 150,
    });
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    // The pipeline caches per bytecode hash; the non-dedup variant calls
    // the detector afresh for every address.
    group.bench_function("pipeline_with_dedup", |b| {
        let pipeline = Pipeline::new(PipelineConfig {
            parallelism: 1,
            resolve_history: false,
            check_collisions: false,
            check_historical_pairs: false,
            ..PipelineConfig::default()
        });
        b.iter(|| {
            std::hint::black_box(pipeline.analyze_all(&landscape.chain, &landscape.etherscan))
        })
    });
    group.bench_function("per_contract_no_dedup", |b| {
        let detector = ProxyDetector::new();
        b.iter(|| {
            let mut count = 0usize;
            for contract in &landscape.contracts {
                if detector
                    .check(&landscape.chain, contract.address)
                    .is_proxy()
                {
                    count += 1;
                }
            }
            std::hint::black_box(count)
        })
    });
    group.finish();
}

fn bench_gate_vs_emulation(c: &mut Criterion) {
    let landscape = Landscape::generate(&LandscapeConfig {
        seed: 17,
        total_contracts: 150,
    });
    let detector = ProxyDetector::new();
    let mut group = c.benchmark_group("ablation_detection_stages");
    group.sample_size(20);
    // A pass-through store derives the artifacts fresh on every lookup,
    // so this measures the raw per-contract disassembly gate.
    let store = ArtifactStore::passthrough();
    group.bench_function("stage1_disasm_gate_only", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for contract in &landscape.contracts {
                let code = landscape.chain.code_at(contract.address);
                if !code.is_empty() && store.intern(code).has_delegatecall() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("full_two_stage_check", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for contract in &landscape.contracts {
                if detector
                    .check(&landscape.chain, contract.address)
                    .is_proxy()
                {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selector_extraction,
    bench_dedup,
    bench_gate_vs_emulation
);
criterion_main!(benches);
