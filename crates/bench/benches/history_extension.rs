//! Criterion benchmarks for the incremental history engine: as the head
//! advances, extending a resident [`SlotTimeline`] (2 probes when the
//! slot is unchanged) versus re-running the full-range binary search
//! from genesis every time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxion_chain::Chain;
use proxion_core::{HistoryIndex, LogicResolver, SlotTimeline};
use proxion_primitives::{Address, U256};

/// Builds a chain where the implementation slot changed 3 times across
/// `blocks` blocks of unrelated traffic.
fn chain_with_history(blocks: u64) -> (Chain, Address) {
    let mut chain = Chain::new();
    let me = chain.new_funded_account();
    let proxy = chain.install_new(me, vec![0x00]).unwrap();
    let per_segment = blocks / 4;
    for (i, logic) in (1..=3u64).enumerate() {
        chain.set_storage(
            proxy,
            U256::ZERO,
            U256::from(Address::from_low_u64(logic * 7)),
        );
        for _ in 0..per_segment {
            chain.set_storage(proxy, U256::ONE, U256::from(i as u64 + 1));
        }
    }
    (chain, proxy)
}

/// Grows the chain by `delta` blocks of traffic that never touches the
/// implementation slot.
fn grow_quiet(chain: &mut Chain, proxy: Address, delta: u64) {
    for _ in 0..delta {
        chain.set_storage(proxy, U256::ONE, U256::from(9u64));
    }
}

/// The service's steady state: the head advanced by `delta` quiet blocks
/// since the last poll. Compare answering with a timeline extension
/// against a from-scratch full-range resolution.
fn bench_head_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_extension");
    for delta in [16u64, 256, 4096] {
        let (mut chain, proxy) = chain_with_history(2048);
        let resolver = LogicResolver::new();
        // Warm timeline resolved to the pre-growth head.
        let mut warm = SlotTimeline::new(proxy, U256::ZERO);
        resolver
            .extend(&chain, &mut warm, chain.head_block())
            .expect("in-memory reads are infallible");
        grow_quiet(&mut chain, proxy, delta);
        let head = chain.head_block();

        group.bench_with_input(
            BenchmarkId::new("incremental_extend", delta),
            &delta,
            |b, _| {
                b.iter(|| {
                    // Clone so every iteration extends the same suffix
                    // instead of short-circuiting on a covered head.
                    let mut timeline = warm.clone();
                    resolver.extend(&chain, &mut timeline, head).unwrap();
                    std::hint::black_box(timeline.history_at(head))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("full_reresolve", delta), &delta, |b, _| {
            b.iter(|| std::hint::black_box(resolver.resolve(&chain, proxy, U256::ZERO)))
        });
    }
    group.finish();
}

fn bench_probe_count_report(c: &mut Criterion) {
    // Not a timing benchmark per se: report the probe-count advantage so
    // `cargo bench` output carries the 2-probes-per-poll observation, and
    // exercise the shared index end to end.
    let mut group = c.benchmark_group("history_extension_probes");
    group.sample_size(10);
    let delta = 4096u64;
    let (mut chain, proxy) = chain_with_history(2048);
    let index = HistoryIndex::default();
    index
        .extend_to(&chain, proxy, U256::ZERO, chain.head_block())
        .expect("in-memory reads are infallible");
    let cold_probes = index.stats().probes_issued;
    grow_quiet(&mut chain, proxy, delta);
    index
        .extend_to(&chain, proxy, U256::ZERO, chain.head_block())
        .expect("in-memory reads are infallible");
    let extend_probes = index.stats().probes_issued - cold_probes;
    let resolver = LogicResolver::new();
    let full = resolver
        .resolve(&chain, proxy, U256::ZERO)
        .expect("in-memory reads are infallible");
    println!(
        "[history_extension] +{delta} quiet blocks: {extend_probes} probes \
         (incremental extend) vs {} (full re-resolve)",
        full.api_calls
    );
    let head = chain.head_block();
    group.bench_function(BenchmarkId::new("index_extend_to", delta), |b| {
        b.iter(|| std::hint::black_box(index.extend_to(&chain, proxy, U256::ZERO, head)))
    });
    group.finish();
}

criterion_group!(benches, bench_head_advance, bench_probe_count_report);
criterion_main!(benches);
