//! Benchmark for the persistent state store (DESIGN.md "Persistence
//! layer"): restart cost with and without a warm `--state-dir`.
//!
//! The workload is a population of upgradeable proxies whose timelines
//! were resolved and checkpointed before the "restart". The cold path
//! rebuilds artifacts and re-runs the Algorithm 1 bisection for every
//! proxy from genesis; the warm path replays the segment files into
//! fresh in-memory stores and pays only the 2-probe suffix extension
//! per timeline (the chain moved a few blocks while we were down).
//!
//! Before timing anything the harness asserts the acceptance criterion
//! pinned by `crates/store/tests/crash_safety.rs`: the warm reload must
//! answer the same queries with >= 10x fewer `ChainSource` probes than
//! the cold start.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_asm::opcode as op;
use proxion_chain::{Chain, ChainSource, CountingSource};
use proxion_core::{ArtifactStore, HistoryIndex};
use proxion_primitives::{Address, U256};
use proxion_store::StateStore;

/// Upgradeable proxies in the population.
const PROXIES: usize = 16;
/// Implementation-slot changes per proxy.
const UPGRADES: u64 = 3;
/// Unrelated filler blocks between upgrade rounds.
const QUIET: u64 = 300;
/// Blocks committed while the service was "down".
const DOWNTIME_BLOCKS: u64 = 5;

fn build_chain() -> (Chain, Vec<Address>) {
    let mut chain = Chain::new();
    let me = chain.new_funded_account();
    let mut addrs = Vec::new();
    for _ in 0..PROXIES {
        addrs.push(chain.install_new(me, vec![op::STOP]).unwrap());
    }
    for round in 1..=UPGRADES {
        for &proxy in &addrs {
            chain.set_storage(proxy, U256::ZERO, U256::from(Address::from_low_u64(round)));
        }
        for _ in 0..QUIET {
            chain.set_storage(addrs[0], U256::from(7u64), U256::from(round));
        }
    }
    (chain, addrs)
}

/// Cold start: intern every bytecode and resolve every timeline from
/// genesis. Returns the probe count.
fn cold_start(chain: &Chain, addrs: &[Address]) -> u64 {
    let counted = CountingSource::new(chain);
    let head = chain.head_block();
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    for &proxy in addrs {
        artifacts.intern(ChainSource::code_at(&counted, proxy).unwrap());
        history
            .extend_to(&counted, proxy, U256::ZERO, head)
            .unwrap();
    }
    counted.counts().total()
}

/// Warm restart: replay the state directory into fresh stores, then
/// extend every timeline to the current head. Returns the probe count.
fn warm_restart(dir: &PathBuf, chain: &Chain, addrs: &[Address]) -> u64 {
    let artifacts = ArtifactStore::new();
    let history = HistoryIndex::default();
    let store = StateStore::open(dir).unwrap();
    let loaded = store.load(&artifacts, &history).unwrap();
    assert_eq!(loaded.records_skipped, 0);
    let counted = CountingSource::new(chain);
    let head = chain.head_block();
    for &proxy in addrs {
        history
            .extend_to(&counted, proxy, U256::ZERO, head)
            .unwrap();
    }
    counted.counts().total()
}

fn bench_warm_restart(c: &mut Criterion) {
    let (mut chain, addrs) = build_chain();

    // Resolve everything once and checkpoint it — the state a service
    // following this chain would have on disk when killed.
    let dir = std::env::temp_dir().join(format!("proxion-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let artifacts = ArtifactStore::new();
        let history = HistoryIndex::default();
        let head = chain.head_block();
        for &proxy in &addrs {
            artifacts.intern(chain.code_at(proxy));
            history.extend_to(&chain, proxy, U256::ZERO, head).unwrap();
        }
        let store = StateStore::open(&dir).unwrap();
        let report = store.checkpoint(&artifacts, &history).unwrap();
        assert_eq!(report.timelines_written, PROXIES as u64);
    }

    // The chain moves on while the service is down, so the warm path
    // still has real (but suffix-only) work to do.
    for _ in 0..DOWNTIME_BLOCKS {
        chain.set_storage(addrs[0], U256::from(7u64), U256::from(99u64));
    }

    // Acceptance criterion before timing: >= 10x fewer probes warm.
    let cold_probes = cold_start(&chain, &addrs);
    let warm_probes = warm_restart(&dir, &chain, &addrs);
    assert!(warm_probes > 0, "the head moved, extensions are not free");
    assert!(
        cold_probes >= 10 * warm_probes,
        "cold {cold_probes} vs warm {warm_probes}: expected >= 10x probe saving"
    );

    let mut group = c.benchmark_group("warm_restart");
    group.sample_size(10);
    group.bench_function("cold_start", |b| {
        b.iter(|| std::hint::black_box(cold_start(&chain, &addrs)))
    });
    group.bench_function("warm_restart", |b| {
        b.iter(|| std::hint::black_box(warm_restart(&dir, &chain, &addrs)))
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_warm_restart);
criterion_main!(benches);
