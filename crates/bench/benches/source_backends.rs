//! Criterion benchmarks for the provider layer: the same full-landscape
//! analysis driven through each [`ChainSource`] backend — the bare
//! in-memory [`Chain`], an O(1) copy-on-write [`ChainSnapshot`], and a
//! [`CachedSource`] with codehash-keyed bytecode interning — so snapshot
//! and caching overhead (or win) is visible next to the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use proxion_bench::standard_landscape;
use proxion_chain::{CachedSource, ChainSource};
use proxion_core::{Pipeline, PipelineConfig};

fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig {
        parallelism: 1,
        resolve_history: false,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    })
}

fn bench_source_backends(c: &mut Criterion) {
    let landscape = standard_landscape();
    let mut group = c.benchmark_group("source_backends");
    group.sample_size(10);

    // Baseline: analysis reads the in-memory chain directly.
    group.bench_function("bare_chain", |b| {
        b.iter(|| {
            let pipeline = pipeline();
            std::hint::black_box(
                pipeline
                    .analyze_all(&landscape.chain, &landscape.etherscan)
                    .expect("in-memory chain reads are infallible"),
            )
        })
    });

    // The service's read path: an O(1) copy-on-write snapshot taken per
    // request, analyzed without any lock on the live chain.
    group.bench_function("snapshot", |b| {
        b.iter(|| {
            let pipeline = pipeline();
            let snapshot = landscape.chain.snapshot();
            std::hint::black_box(
                pipeline
                    .analyze_all(&snapshot, &landscape.etherscan)
                    .expect("snapshot reads are infallible"),
            )
        })
    });

    // Snapshot plus the shared source cache: bytecode interned by
    // codehash, storage probes memoized.
    group.bench_function("snapshot_cached", |b| {
        b.iter(|| {
            let pipeline = pipeline();
            let cached = CachedSource::new(landscape.chain.snapshot());
            std::hint::black_box(
                pipeline
                    .analyze_all(&cached, &landscape.etherscan)
                    .expect("cached snapshot reads are infallible"),
            )
        })
    });
    group.finish();
}

fn bench_single_reads(c: &mut Criterion) {
    // Microbenchmark of one hot read per backend, isolating per-call
    // decorator overhead from whole-pipeline effects.
    let landscape = standard_landscape();
    let address = landscape.contracts[0].address;
    let mut group = c.benchmark_group("source_backend_code_at");

    group.bench_function("bare_chain", |b| {
        b.iter(|| std::hint::black_box(ChainSource::code_at(&landscape.chain, address)))
    });
    let snapshot = landscape.chain.snapshot();
    group.bench_function("snapshot", |b| {
        b.iter(|| std::hint::black_box(snapshot.code_at(address)))
    });
    let cached = CachedSource::new(landscape.chain.snapshot());
    group.bench_function("snapshot_cached", |b| {
        b.iter(|| std::hint::black_box(cached.code_at(address)))
    });
    group.finish();
}

criterion_group!(benches, bench_source_backends, bench_single_reads);
criterion_main!(benches);
