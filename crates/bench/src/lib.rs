//! Shared helpers for the table/figure regeneration harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index); this library holds the scoring and
//! formatting code they share.

use std::collections::BTreeMap;

use proxion_dataset::{Landscape, LandscapeConfig};

/// The default landscape size for the harnesses. Override with the
/// `PROXION_SCALE` environment variable.
pub fn landscape_scale() -> usize {
    std::env::var("PROXION_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000)
}

/// Builds the standard benchmark landscape (deterministic).
pub fn standard_landscape() -> Landscape {
    Landscape::generate(&LandscapeConfig {
        seed: 0xe7e4,
        total_contracts: landscape_scale(),
    })
}

/// A confusion matrix with the paper's Table 2 columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Scores one observation.
    pub fn record(&mut self, truth: bool, flagged: bool) {
        match (truth, flagged) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Accuracy over all recorded observations.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        100.0 * (self.tp + self.tn) as f64 / total as f64
    }

    /// Formats as the Table 2 row: `TP FP TN FN accuracy`.
    pub fn row(&self) -> String {
        format!(
            "{:>5} {:>5} {:>5} {:>5} {:>8.1}%",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.accuracy()
        )
    }
}

/// Percentage helper.
pub fn pct(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// Prints a section header in the harnesses' uniform style.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Accumulates per-year counters and prints them in year order.
#[derive(Debug, Clone, Default)]
pub struct YearSeries {
    values: BTreeMap<u16, u64>,
}

impl YearSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `year`.
    pub fn add(&mut self, year: u16, amount: u64) {
        *self.values.entry(year).or_insert(0) += amount;
    }

    /// The value for a year.
    pub fn get(&self, year: u16) -> u64 {
        self.values.get(&year).copied().unwrap_or(0)
    }

    /// The cumulative value up to and including a year.
    pub fn cumulative(&self, year: u16) -> u64 {
        self.values
            .iter()
            .filter(|&(&y, _)| y <= year)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Total over all years.
    pub fn total(&self) -> u64 {
        self.values.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_scoring() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (1, 1, 1, 1));
        assert!((c.accuracy() - 50.0).abs() < 1e-9);
        assert!(c.row().contains("50.0%"));
    }

    #[test]
    fn year_series_cumulative() {
        let mut s = YearSeries::new();
        s.add(2020, 2);
        s.add(2021, 3);
        s.add(2021, 1);
        assert_eq!(s.get(2021), 4);
        assert_eq!(s.cumulative(2020), 2);
        assert_eq!(s.cumulative(2023), 6);
        assert_eq!(s.total(), 6);
        assert_eq!(s.get(2019), 0);
    }

    #[test]
    fn pct_handles_zero() {
        assert_eq!(pct(1, 0), 0.0);
        assert!((pct(1, 4) - 25.0).abs() < 1e-9);
    }
}
