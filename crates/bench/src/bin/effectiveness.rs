//! Regenerates the **§6.2 effectiveness** comparison:
//!
//! * (a) a Smart-Contract-Sanctuary-like corpus (verified contracts):
//!   Proxion vs USCHunt proxy identification and failure rates, plus the
//!   function collisions only Proxion reports;
//! * (b) a CRUSH-like whole-chain corpus: trace-based pair discovery vs
//!   Proxion's bytecode detection — library-call exclusion and hidden
//!   proxies.

use std::collections::BTreeSet;

use proxion_baselines::{CrushLike, UschuntLike, UschuntOutcome};
use proxion_bench::{header, pct, standard_landscape};
use proxion_core::{Pipeline, PipelineConfig, ProxyDetector};
use proxion_dataset::TemplateId;

fn main() {
    let landscape = standard_landscape();
    let total = landscape.contracts.len();

    // ---------------------------------------------------------------
    header(&format!(
        "§6.2(a) Sanctuary-like corpus: Proxion vs USCHunt (of {total} contracts)"
    ));
    let verified: Vec<_> = landscape
        .contracts
        .iter()
        .filter(|c| c.truth.has_source)
        .collect();
    let uschunt = UschuntLike::new();
    let detector = ProxyDetector::new();

    let mut us_found = 0usize;
    let mut us_correct = 0usize;
    let mut us_failures = 0usize;
    let mut px_found = 0usize;
    let mut px_correct = 0usize;
    let mut px_failures = 0usize;
    for c in &verified {
        match uschunt.detect_proxy(&landscape.chain, &landscape.etherscan, c.address) {
            UschuntOutcome::Ok(true) => {
                us_found += 1;
                if c.truth.is_proxy {
                    us_correct += 1;
                }
            }
            UschuntOutcome::Ok(false) | UschuntOutcome::NoSource => {}
            UschuntOutcome::CompileError => us_failures += 1,
        }
        let check = detector.check(&landscape.chain, c.address);
        if check.is_proxy() {
            px_found += 1;
            if c.truth.is_proxy {
                px_correct += 1;
            }
        } else if matches!(
            check,
            proxion_core::ProxyCheck::NotProxy(proxion_core::NotProxyReason::EmulationError(_))
        ) {
            px_failures += 1;
        }
    }
    let true_proxies = verified.iter().filter(|c| c.truth.is_proxy).count();
    println!(
        "verified contracts:      {:>8}   (true proxies among them: {true_proxies})",
        verified.len()
    );
    println!(
        "USCHunt: {:>6} flagged ({us_correct} correct), {:>5} analysis failures ({:.1}%)",
        us_found,
        us_failures,
        pct(us_failures, verified.len())
    );
    println!(
        "Proxion: {:>6} flagged ({px_correct} correct), {:>5} emulation failures ({:.1}%)",
        px_found,
        px_failures,
        pct(px_failures, verified.len())
    );
    println!("(paper: 35,924 vs 29,023 proxies; ~30% USCHunt halts vs 1.2% Proxion");
    println!(" failures; 257 function collisions USCHunt never reported.)");

    // ---------------------------------------------------------------
    header("§6.2(b) CRUSH-like whole-chain corpus: trace-based vs Proxion");
    let crush = CrushLike::new();
    let crush_proxies = crush
        .detect_proxies(&landscape.chain)
        .expect("in-memory chain reads are infallible");
    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: false,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");
    let proxion_proxies: BTreeSet<_> = report.proxies().map(|r| r.address).collect();

    let crush_only: Vec<_> = crush_proxies.difference(&proxion_proxies).collect();
    let proxion_only: Vec<_> = proxion_proxies.difference(&crush_proxies).collect();
    let library_users: BTreeSet<_> = landscape
        .contracts
        .iter()
        .filter(|c| c.template == TemplateId::LibraryUser)
        .map(|c| c.address)
        .collect();
    let crush_only_library = crush_only
        .iter()
        .filter(|a| library_users.contains(a))
        .count();
    let hidden = report.hidden_proxy_count();

    println!(
        "CRUSH   proxies (trace-based):   {:>8}",
        crush_proxies.len()
    );
    println!(
        "Proxion proxies (bytecode):      {:>8}",
        proxion_proxies.len()
    );
    println!(
        "CRUSH-only flags:                {:>8}   ({} are library users — false pairs)",
        crush_only.len(),
        crush_only_library
    );
    println!(
        "Proxion-only finds:              {:>8}   (contracts with no usable traces)",
        proxion_only.len()
    );
    println!("hidden proxies (no src, no tx):  {:>8}", hidden);
    println!(
        "exploitable storage collisions found by the pipeline: {:>4}",
        report.storage_collision_count()
    );
    println!();
    println!("(paper: CRUSH over-reports ~1.2M library users; Proxion uncovers");
    println!(" 1,667,905 proxies CRUSH cannot see, incl. 1.5M hidden, and 1,480");
    println!(" additional exploitable storage collisions.)");
}
