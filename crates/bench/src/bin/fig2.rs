//! Regenerates **Figure 2**: the accumulated number of alive contracts by
//! (source code, transaction) availability per year — the dataset
//! landscape that motivates hidden-contract analysis.

use proxion_bench::{header, pct, standard_landscape, YearSeries};
use proxion_dataset::params::YEARS;

fn main() {
    let landscape = standard_landscape();
    header(&format!(
        "Figure 2: alive contracts by availability ({} contracts)",
        landscape.contracts.len()
    ));

    let mut only_source = YearSeries::new();
    let mut source_and_tx = YearSeries::new();
    let mut only_tx = YearSeries::new();
    let mut neither = YearSeries::new();
    for c in &landscape.contracts {
        let series = match (c.truth.has_source, c.truth.has_tx) {
            (true, false) => &mut only_source,
            (true, true) => &mut source_and_tx,
            (false, true) => &mut only_tx,
            (false, false) => &mut neither,
        };
        series.add(c.year, 1);
    }

    println!(
        "{:<6} | {:>12} {:>12} {:>12} {:>16} | {:>10}",
        "Year", "only-src", "src+tx", "only-tx", "no-src,no-tx", "cumulative"
    );
    println!("{}", "-".repeat(80));
    let mut running = 0u64;
    for year in YEARS {
        let a = only_source.get(year);
        let b = source_and_tx.get(year);
        let c = only_tx.get(year);
        let d = neither.get(year);
        running += a + b + c + d;
        println!(
            "{:<6} | {:>12} {:>12} {:>12} {:>16} | {:>10}",
            year, a, b, c, d, running
        );
    }
    let total = landscape.contracts.len();
    let with_source = (only_source.total() + source_and_tx.total()) as usize;
    let with_tx = (source_and_tx.total() + only_tx.total()) as usize;
    let hidden = neither.total() as usize;
    println!();
    println!(
        "With source: {with_source} ({:.1}%)   with transactions: {with_tx} ({:.1}%)   hidden: {hidden} ({:.1}%)",
        pct(with_source, total),
        pct(with_tx, total),
        pct(hidden, total),
    );
    println!("(paper: ~18% with source, ~53% with transactions; the red series —");
    println!(" no source, no transactions — is the population only Proxion covers.)");
}
