//! Serve-mode throughput harness: starts the analysis server over a
//! deterministic landscape on loopback, drives `proxy_check` load with
//! the bundled load generator, and reports requests/second plus cache
//! hit rate — cold cache vs. warm cache.
//!
//! Scale with `PROXION_SCALE` (landscape size), `PROXION_CONNS`
//! (client connections, default 4), and `PROXION_REQS` (requests per
//! connection, default 200).

use std::sync::Arc;

use parking_lot::RwLock;
use proxion_bench::{header, standard_landscape};
use proxion_core::{Pipeline, PipelineConfig};
use proxion_service::{loadgen, server, LoadgenConfig, ServerConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let landscape = standard_landscape();
    let total = landscape.contracts.len();
    header(&format!("serve-mode throughput ({total} contracts)"));

    let chain = Arc::new(RwLock::new(landscape.chain));
    let etherscan = Arc::new(RwLock::new(landscape.etherscan));
    let pipeline = Arc::new(Pipeline::new(PipelineConfig::default()));

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let handle = server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_capacity: 256,
            follow_chain: false,
            ..ServerConfig::default()
        },
        chain,
        etherscan,
        Arc::clone(&pipeline),
    )
    .expect("server starts");
    let config = LoadgenConfig {
        connections: env_usize("PROXION_CONNS", 4),
        requests_per_connection: env_usize("PROXION_REQS", 200),
    };
    println!(
        "server: {} workers, queue 256, {} connections x {} requests",
        workers, config.connections, config.requests_per_connection
    );

    // Cold pass: every distinct bytecode is a verdict-cache miss.
    let cold = loadgen::run(handle.local_addr(), &config).expect("cold load run");
    let cold_stats = pipeline.cache().stats();
    println!(
        "cold cache:  {:>10.0} req/s   ({} ok, {} errors, hit rate {:.1}%)",
        cold.requests_per_sec,
        cold.ok,
        cold.errors,
        100.0 * cold_stats.checks.hit_rate()
    );

    // Warm pass: same addresses again — verdicts come from the cache.
    let warm = loadgen::run(handle.local_addr(), &config).expect("warm load run");
    let warm_stats = pipeline.cache().stats();
    let warm_hits = warm_stats.checks.hits - cold_stats.checks.hits;
    let warm_misses = warm_stats.checks.misses - cold_stats.checks.misses;
    let warm_rate = if warm_hits + warm_misses > 0 {
        100.0 * warm_hits as f64 / (warm_hits + warm_misses) as f64
    } else {
        0.0
    };
    println!(
        "warm cache:  {:>10.0} req/s   ({} ok, {} errors, hit rate {:.1}%)",
        warm.requests_per_sec, warm.ok, warm.errors, warm_rate
    );
    println!(
        "speedup:     {:>10.2}x   (cache entries: {} verdicts, {} pairs)",
        warm.requests_per_sec / cold.requests_per_sec.max(1e-9),
        warm_stats.checks.entries,
        warm_stats.pairs.entries
    );

    let rejected = handle
        .metrics()
        .rejected_total
        .load(std::sync::atomic::Ordering::Relaxed);
    if rejected > 0 {
        println!("backpressure: {rejected} connections answered 503");
    }
    handle.stop();
}
