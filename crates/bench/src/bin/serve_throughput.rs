//! Serve-mode throughput harness: starts the analysis server over a
//! deterministic landscape on loopback and drives *open-loop* load at a
//! ladder of concurrent connection counts, reporting checks/second and
//! p50/p99/p99.9 latency at each rung — the gate for the reactor is an
//! order-of-magnitude connection-count increase at flat p99, not a
//! single mean-throughput number.
//!
//! Passes:
//!   1. warm-up (primes verdict/artifact caches so the ladder measures
//!      the connection engine, not first-touch analysis),
//!   2. connection ladder at fixed pipeline depth,
//!   3. one batched rung (`proxy_check_batch`) showing round-trip
//!      amortization.
//!
//! Scale with `PROXION_SCALE` (landscape size), `PROXION_TOTAL`
//! (checks per rung, default 4000), `PROXION_DEPTH` (pipeline depth,
//! default 4), and `PROXION_MAX_CONNS` (ladder ceiling, default 256).

use std::sync::Arc;

use parking_lot::RwLock;
use proxion_bench::{header, standard_landscape};
use proxion_core::{Pipeline, PipelineConfig};
use proxion_service::{loadgen, server, LoadgenConfig, ServerConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Rung {
    label: &'static str,
    connections: usize,
    pipeline_depth: usize,
    batch_size: usize,
}

fn main() {
    let landscape = standard_landscape();
    let total_contracts = landscape.contracts.len();
    header(&format!(
        "serve-mode throughput ({total_contracts} contracts)"
    ));

    let chain = Arc::new(RwLock::new(landscape.chain));
    let etherscan = Arc::new(RwLock::new(landscape.etherscan));
    let pipeline = Arc::new(Pipeline::new(PipelineConfig::default()));

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let handle = server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_capacity: 1024,
            max_connections: 8192,
            follow_chain: false,
            ..ServerConfig::default()
        },
        chain,
        etherscan,
        Arc::clone(&pipeline),
    )
    .expect("server starts");

    let total_checks = env_usize("PROXION_TOTAL", 4000);
    let depth = env_usize("PROXION_DEPTH", 4);
    let max_conns = env_usize("PROXION_MAX_CONNS", 256);
    println!(
        "server: {workers} workers, queue 1024; {total_checks} checks per rung, pipeline depth {depth}"
    );

    // Warm-up: prime every cache layer so the ladder isolates the
    // connection engine from first-touch analysis cost.
    let warmup = LoadgenConfig {
        connections: 4,
        requests_per_connection: (total_checks / 4).max(1),
        pipeline_depth: 1,
        batch_size: 1,
    };
    loadgen::run(handle.local_addr(), &warmup).expect("warm-up run");
    println!(
        "warm-up done (verdict cache hit rate {:.1}%)\n",
        100.0 * pipeline.cache().stats().checks.hit_rate()
    );

    let mut rungs: Vec<Rung> = Vec::new();
    for &connections in &[4usize, 16, 64, 256] {
        if connections > max_conns {
            break;
        }
        rungs.push(Rung {
            label: "pipelined",
            connections,
            pipeline_depth: depth,
            batch_size: 1,
        });
    }
    // Iso-load ladder: total outstanding requests (connections × depth)
    // held constant while the connection count scales 64×. Flat p99
    // across these rungs shows connection count itself is free to the
    // reactor — queueing delay tracks outstanding work (Little's law),
    // not how many sockets carry it.
    for &(connections, depth) in &[(4usize, 64usize), (16, 16), (64, 4), (256, 1)] {
        if connections > max_conns {
            break;
        }
        rungs.push(Rung {
            label: "iso-load",
            connections,
            pipeline_depth: depth,
            batch_size: 1,
        });
    }
    rungs.push(Rung {
        label: "batched",
        connections: 16.min(max_conns),
        pipeline_depth: 2,
        batch_size: 32,
    });

    println!(
        "{:>10} {:>7} {:>6} {:>6} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "mode", "conns", "depth", "batch", "checks/s", "p50 µs", "p99 µs", "p99.9 µs", "errors"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for rung in &rungs {
        let wire_requests = (total_checks / rung.batch_size).max(1);
        let config = LoadgenConfig {
            connections: rung.connections,
            requests_per_connection: (wire_requests / rung.connections).max(1),
            pipeline_depth: rung.pipeline_depth,
            batch_size: rung.batch_size,
        };
        let report = loadgen::run(handle.local_addr(), &config).expect("ladder run");
        println!(
            "{:>10} {:>7} {:>6} {:>6} {:>12.0} {:>10} {:>10} {:>10} {:>8}",
            rung.label,
            rung.connections,
            rung.pipeline_depth,
            rung.batch_size,
            report.requests_per_sec,
            report.p50_us,
            report.p99_us,
            report.p999_us,
            report.errors
        );
        json_rows.push(format!(
            "{{\"mode\":\"{}\",\"connections\":{},\"pipeline_depth\":{},\"batch_size\":{},\"checks_per_sec\":{:.0},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"ok\":{},\"errors\":{}}}",
            rung.label,
            rung.connections,
            rung.pipeline_depth,
            rung.batch_size,
            report.requests_per_sec,
            report.p50_us,
            report.p99_us,
            report.p999_us,
            report.ok,
            report.errors
        ));
    }

    let metrics = handle.metrics();
    let pipelined = metrics
        .requests_pipelined_total
        .load(std::sync::atomic::Ordering::Relaxed);
    let batched = metrics
        .batch_requests_total
        .load(std::sync::atomic::Ordering::Relaxed);
    let rejected = metrics
        .rejected_total
        .load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "\nserver counters: {pipelined} pipelined requests, {batched} batch calls, {rejected} rejected (503)"
    );
    println!("\nJSON rows (for BENCH_serve.json):");
    for row in &json_rows {
        println!("  {row}");
    }
    handle.stop();
}
