//! Regenerates **Table 1**: the tool capability matrix.
//!
//! The matrix is a statement about each tool's *decision procedure*; the
//! flags printed here are the ones the baseline implementations actually
//! enforce (e.g. `UschuntLike` returns `NoSource` without source), so the
//! unit tests of `proxion-baselines` keep this table honest.

use proxion_baselines::CAPABILITY_MATRIX;

fn mark(flag: bool) -> &'static str {
    if flag {
        "  v  "
    } else {
        "     "
    }
}

fn main() {
    proxion_bench::header("Table 1: smart-contract and collision coverage per tool");
    println!(
        "{:<16} | {:^11} {:^11} | {:^11} {:^11} | {:^9} {:^9} | {:^9} {:^9}",
        "",
        "src+tx",
        "src,no-tx",
        "nosrc+tx",
        "nosrc,no-tx",
        "fn(src)",
        "fn(byte)",
        "st(src)",
        "st(byte)"
    );
    println!("{}", "-".repeat(116));
    for row in CAPABILITY_MATRIX {
        println!(
            "{:<16} | {:^11} {:^11} | {:^11} {:^11} | {:^9} {:^9} | {:^9} {:^9}",
            row.tool.name(),
            mark(row.source_with_tx),
            mark(row.source_without_tx),
            mark(row.nosource_with_tx),
            mark(row.nosource_without_tx),
            mark(row.function_with_source),
            mark(row.function_without_source),
            mark(row.storage_with_source),
            mark(row.storage_without_source),
        );
    }
    println!();
    println!("(v = covered; Proxion's novel cells are the hidden-contract column");
    println!(" and bytecode-level function-collision detection.)");
}
