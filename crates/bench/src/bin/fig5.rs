//! Regenerates **Figure 5**: the bytecode-duplicate skew — most proxy and
//! logic contracts are byte-identical clones of a handful of templates.

use std::collections::HashMap;

use proxion_bench::{header, pct, standard_landscape};
use proxion_core::{Pipeline, PipelineConfig};
use proxion_primitives::B256;

fn print_distribution(label: &str, counts: &mut [(B256, usize)], total: usize) {
    counts.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!(
        "{label}: {} instances, {} unique bytecodes",
        total,
        counts.len()
    );
    println!("  top duplicates (count per unique bytecode, log-scale shape):");
    for (rank, (_, count)) in counts.iter().take(10).enumerate() {
        let bar_len = ((*count as f64).ln().max(0.0) * 6.0) as usize;
        println!(
            "  #{:<3} {:>8}  {}",
            rank + 1,
            count,
            "#".repeat(bar_len.max(1))
        );
    }
    let top3: usize = counts.iter().take(3).map(|(_, c)| c).sum();
    println!(
        "  top-3 templates cover {top3}/{total} ({:.1}%)",
        pct(top3, total)
    );
    println!();
}

fn main() {
    let landscape = standard_landscape();
    header(&format!(
        "Figure 5: bytecode-duplicate distribution ({} contracts)",
        landscape.contracts.len()
    ));

    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: false,
        check_collisions: false,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");

    let mut proxy_hashes: HashMap<B256, usize> = HashMap::new();
    let mut logic_hashes: HashMap<B256, usize> = HashMap::new();
    let mut proxy_total = 0usize;
    let mut logic_total = 0usize;
    for r in report.proxies() {
        *proxy_hashes.entry(r.code_hash).or_insert(0) += 1;
        proxy_total += 1;
        if let Some(logic) = r.check.logic().filter(|l| !l.is_zero()) {
            let code = landscape.chain.code_at(logic);
            let hash = proxion_primitives::keccak256(code.as_slice());
            *logic_hashes.entry(hash).or_insert(0) += 1;
            logic_total += 1;
        }
    }

    let mut proxies: Vec<(B256, usize)> = proxy_hashes.into_iter().collect();
    let mut logics: Vec<(B256, usize)> = logic_hashes.into_iter().collect();
    print_distribution("(a) proxy contracts", &mut proxies, proxy_total);
    print_distribution(
        "(b) logic contracts (by referencing pair)",
        &mut logics,
        logic_total,
    );
    println!("(paper: 19.6M proxies but only 96,420 unique; 42% of proxies are");
    println!(" clones of just three templates.)");
}
