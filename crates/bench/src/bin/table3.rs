//! Regenerates **Table 3**: function and storage collisions detected per
//! deployment year, plus the duplicate share among function collisions.

use std::collections::HashMap;

use proxion_bench::{header, pct, standard_landscape, YearSeries};
use proxion_core::{Pipeline, PipelineConfig};
use proxion_dataset::params::YEARS;
use proxion_primitives::Address;

fn main() {
    let landscape = standard_landscape();
    header(&format!(
        "Table 3: collisions per deployment year ({} contracts)",
        landscape.contracts.len()
    ));

    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: false,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");

    let year_of: HashMap<Address, u16> = landscape
        .contracts
        .iter()
        .map(|c| (c.address, c.year))
        .collect();

    let mut function = YearSeries::new();
    let mut storage = YearSeries::new();
    let mut duplicate_function = 0u64;
    let mut function_hashes: HashMap<proxion_primitives::B256, u64> = HashMap::new();

    for r in &report.reports {
        let Some(&year) = year_of.get(&r.address) else {
            continue;
        };
        if r.function_collisions
            .as_ref()
            .is_some_and(|f| f.has_collisions())
        {
            function.add(year, 1);
            *function_hashes.entry(r.code_hash).or_insert(0) += 1;
        }
        if r.storage_collisions
            .as_ref()
            .is_some_and(|s| s.has_exploitable())
        {
            storage.add(year, 1);
        }
    }
    for &count in function_hashes.values() {
        if count > 1 {
            duplicate_function += count;
        }
    }

    println!(
        "{:<6} | {:>20} {:>20}",
        "Year", "Function collisions", "Storage collisions"
    );
    println!("{}", "-".repeat(52));
    for year in YEARS {
        println!(
            "{:<6} | {:>20} {:>20}",
            year,
            function.get(year),
            storage.get(year)
        );
    }
    println!("{}", "-".repeat(52));
    println!(
        "{:<6} | {:>20} {:>20}",
        "Total",
        function.total(),
        storage.total()
    );
    println!();
    println!(
        "Duplicated-bytecode share of function collisions: {}/{} ({:.1}%)",
        duplicate_function,
        function.total(),
        pct(duplicate_function as usize, function.total() as usize)
    );
    println!("(paper: 1,566,784 function / 3,022 storage collisions; 98.7% of");
    println!(" function collisions are duplicates of OwnableDelegateProxy.)");
}
