//! Regenerates **Table 4**: the distribution of proxy design standards,
//! measured by Proxion against the generator's ground truth.

use std::collections::HashMap;

use proxion_bench::{header, pct, standard_landscape};
use proxion_core::{Pipeline, PipelineConfig, ProxyStandard};
use proxion_dataset::TrueStandard;

fn main() {
    let landscape = standard_landscape();
    header(&format!(
        "Table 4: proxy standards ({} contracts)",
        landscape.contracts.len()
    ));

    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: false,
        check_collisions: false,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");
    let detected = report.standard_distribution();
    let proxy_count = report.proxy_count();

    let mut truth: HashMap<TrueStandard, usize> = HashMap::new();
    for c in &landscape.contracts {
        if let Some(standard) = c.truth.standard {
            *truth.entry(standard).or_insert(0) += 1;
        }
    }
    let truth_total: usize = truth.values().sum();

    println!(
        "{:<22} | {:>10} {:>8} | {:>10} {:>8}",
        "Standard", "detected", "ratio", "truth", "ratio"
    );
    println!("{}", "-".repeat(68));
    let rows: [(&str, Option<ProxyStandard>, Option<TrueStandard>); 4] = [
        (
            "EIP-1167 (minimal)",
            Some(ProxyStandard::Eip1167),
            Some(TrueStandard::Minimal),
        ),
        (
            "EIP-1822 (UUPS)",
            Some(ProxyStandard::Eip1822),
            Some(TrueStandard::Eip1822),
        ),
        (
            "EIP-1967",
            Some(ProxyStandard::Eip1967),
            Some(TrueStandard::Eip1967),
        ),
        (
            "Others",
            Some(ProxyStandard::Other),
            Some(TrueStandard::OtherSlot),
        ),
    ];
    for (label, det_key, truth_key) in rows {
        let d = det_key.and_then(|k| detected.get(&k)).copied().unwrap_or(0);
        let t = truth_key.and_then(|k| truth.get(&k)).copied().unwrap_or(0);
        println!(
            "{:<22} | {:>10} {:>7.2}% | {:>10} {:>7.2}%",
            label,
            d,
            pct(d, proxy_count),
            t,
            pct(t, truth_total)
        );
    }
    let diamonds = truth.get(&TrueStandard::Diamond).copied().unwrap_or(0);
    println!("{}", "-".repeat(68));
    println!(
        "{:<22} | {:>10} {:>8} | {:>10} {:>7.2}%",
        "EIP-2535 (diamond)",
        "missed",
        "",
        diamonds,
        pct(diamonds, truth_total)
    );
    println!();
    println!(
        "Detected proxies: {proxy_count} / {} true proxies (diamonds are the",
        truth_total
    );
    println!("paper's documented miss, §8.1).");
    println!("(paper: EIP-1167 89.05%, EIP-1822 0.12%, EIP-1967 1.00%, others 9.83%)");
}
