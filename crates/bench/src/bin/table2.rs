//! Regenerates **Table 2**: storage- and function-collision detection
//! accuracy of USCHunt, CRUSH and Proxion on a ground-truth-labeled
//! corpus.
//!
//! Methodology mirrors §6.3: all corpus contracts are verified (the Smart
//! Contract Sanctuary setting); each tool runs its own procedure; scoring
//! is over the union of pairs flagged by at least one tool plus all
//! ground-truth-positive pairs — the set the paper's authors manually
//! inspected.

use std::collections::HashSet;

use proxion_baselines::{CrushLike, UschuntLike};
use proxion_bench::Confusion;
use proxion_core::{FunctionCollisionDetector, ProxyDetector, StorageCollisionDetector};
use proxion_dataset::CollisionCorpus;

fn main() {
    let per_kind = std::env::var("PROXION_PER_KIND")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    let corpus = CollisionCorpus::generate(0x7ab1e2, per_kind);
    proxion_bench::header(&format!(
        "Table 2: collision detection accuracy ({} labeled pairs)",
        corpus.pairs.len()
    ));

    let uschunt = UschuntLike::new();
    let crush = CrushLike::new();
    let proxion_storage = StorageCollisionDetector::new();
    let proxion_functions = FunctionCollisionDetector::new();
    let proxy_detector = ProxyDetector::new();

    // ---- per-tool verdicts ----
    let mut uschunt_storage = Vec::new();
    let mut crush_storage = Vec::new();
    let mut proxion_storage_flags = Vec::new();
    let mut uschunt_function = Vec::new();
    let mut proxion_function_flags = Vec::new();

    for pair in &corpus.pairs {
        // USCHunt: source-only, compile failures, name/type comparison.
        let us_st = uschunt
            .storage_collisions(&corpus.etherscan, pair.proxy, pair.logic)
            .ok()
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        let us_fn = uschunt
            .function_collisions(&corpus.etherscan, pair.proxy, pair.logic)
            .ok()
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        // USCHunt only reports pairs its own proxy detection accepted.
        let us_proxy = uschunt
            .detect_proxy(&corpus.chain, &corpus.etherscan, pair.proxy)
            .ok()
            .unwrap_or(false);
        uschunt_storage.push(us_st && us_proxy);
        uschunt_function.push(us_fn && us_proxy);

        // CRUSH: analyzes any delegatecalling pair (library users too).
        let crush_flag = crush
            .storage_collisions(&corpus.chain, pair.proxy, pair.logic)
            .expect("in-memory chain reads are infallible")
            .has_exploitable();
        crush_storage.push(crush_flag);

        // Proxion: proxy detection gates both collision checks.
        let is_proxy = proxy_detector.check(&corpus.chain, pair.proxy).is_proxy();
        let px_st = is_proxy
            && proxion_storage
                .check_pair(&corpus.chain, pair.proxy, pair.logic)
                .expect("in-memory chain reads are infallible")
                .has_exploitable();
        let px_fn = is_proxy
            && proxion_functions
                .check_pair(&corpus.chain, &corpus.etherscan, pair.proxy, pair.logic)
                .expect("in-memory chain reads are infallible")
                .has_collisions();
        proxion_storage_flags.push(px_st);
        proxion_function_flags.push(px_fn);
    }

    // ---- union-of-detections scoring (the manually inspected set) ----
    let storage_universe: HashSet<usize> = (0..corpus.pairs.len())
        .filter(|&i| {
            corpus.pairs[i].truth_storage
                || uschunt_storage[i]
                || crush_storage[i]
                || proxion_storage_flags[i]
        })
        .collect();
    let function_universe: HashSet<usize> = (0..corpus.pairs.len())
        .filter(|&i| {
            corpus.pairs[i].truth_function || uschunt_function[i] || proxion_function_flags[i]
        })
        .collect();

    let score = |universe: &HashSet<usize>, flags: &[bool], truth: &dyn Fn(usize) -> bool| {
        let mut confusion = Confusion::default();
        for &i in universe {
            confusion.record(truth(i), flags[i]);
        }
        confusion
    };

    let storage_truth = |i: usize| corpus.pairs[i].truth_storage;
    let function_truth = |i: usize| corpus.pairs[i].truth_function;

    println!(
        "{:<9} {:<9} | {:>5} {:>5} {:>5} {:>5} {:>9}",
        "", "", "TP", "FP", "TN", "FN", "Accuracy"
    );
    println!("{}", "-".repeat(58));
    println!(
        "{:<9} {:<9} | {}",
        "Storage",
        "USCHunt",
        score(&storage_universe, &uschunt_storage, &storage_truth).row()
    );
    println!(
        "{:<9} {:<9} | {}",
        "collision",
        "CRUSH",
        score(&storage_universe, &crush_storage, &storage_truth).row()
    );
    println!(
        "{:<9} {:<9} | {}",
        "",
        "Proxion",
        score(&storage_universe, &proxion_storage_flags, &storage_truth).row()
    );
    println!("{}", "-".repeat(58));
    println!(
        "{:<9} {:<9} | {}",
        "Function",
        "USCHunt",
        score(&function_universe, &uschunt_function, &function_truth).row()
    );
    println!(
        "{:<9} {:<9} | {}",
        "collision",
        "Proxion",
        score(&function_universe, &proxion_function_flags, &function_truth).row()
    );
    println!();
    println!("(paper: storage 54.4 / 54.4 / 78.2%; function 53.3 / 99.5%. CRUSH does");
    println!(" not detect function collisions.)");
}
