//! Regenerates the **adversarial effectiveness** numbers behind
//! BENCH_adversarial.json: per-class precision/recall of the
//! delegation-graph resolver over the adversarial population (beacon,
//! chained, metamorphic, non-standard-slot, dirty-minimal, setterless),
//! the upgradeability classifier's per-class accuracy against generator
//! ground truth, the metamorphic invalidation correctness count, and
//! detection wall-clock next to the standard-EIP landscape.

use std::collections::HashMap;
use std::time::Instant;

use proxion_bench::{header, pct};
use proxion_chain::Chain;
use proxion_core::{Pipeline, PipelineConfig, ProxyDetector};
use proxion_dataset::{AdversarialClass, AdversarialCorpus, Landscape, LandscapeConfig};
use proxion_etherscan::Etherscan;
use proxion_primitives::U256;
use proxion_solc::{compile, templates};

fn main() {
    let per_class = std::env::var("PROXION_ADV_PER_CLASS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let corpus = AdversarialCorpus::generate(0xadbe, per_class);
    let entries: Vec<_> = corpus.cases.iter().map(|c| c.entry).collect();
    header(&format!(
        "adversarial population: {} classes x {per_class} = {} contracts",
        AdversarialClass::all().len(),
        entries.len()
    ));

    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 1,
        resolve_history: false,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let started = Instant::now();
    let report = pipeline.analyze(&corpus.chain, &corpus.etherscan, &entries);
    let adv_elapsed = started.elapsed();
    let by_address: HashMap<_, _> = report.reports.iter().map(|r| (r.address, r)).collect();

    // Per-class scoring: detection verdict, exact chain shape (hops +
    // terminal), and upgradeability class, all vs by-construction truth.
    println!(
        "{:<18} {:>6} {:>9} {:>11} {:>13}",
        "class", "cases", "verdict%", "chain-exact%", "upgradeable-ok%"
    );
    for class in AdversarialClass::all() {
        let cases: Vec<_> = corpus.cases.iter().filter(|c| c.class == class).collect();
        let mut verdict_ok = 0usize;
        let mut chain_ok = 0usize;
        let mut class_ok = 0usize;
        for case in &cases {
            let r = by_address[&case.entry];
            if r.check.is_proxy() == case.expected_is_proxy {
                verdict_ok += 1;
            }
            let hops: Vec<_> = r
                .delegation
                .as_ref()
                .map(|d| d.hops.iter().map(|h| h.address).collect())
                .unwrap_or_default();
            if hops == case.expected_hops
                && r.delegation.as_ref().map(|d| d.terminal) == case.expected_terminal
            {
                chain_ok += 1;
            }
            let predicted = r.upgradeability.as_ref().map(|u| u.label());
            if predicted == case.expected_upgradeability.map(|u| u.label()) {
                class_ok += 1;
            }
        }
        println!(
            "{:<18} {:>6} {:>8.1}% {:>10.1}% {:>12.1}%",
            class.label(),
            cases.len(),
            pct(verdict_ok, cases.len()),
            pct(chain_ok, cases.len()),
            pct(class_ok, cases.len()),
        );
    }

    // Metamorphic invalidation correctness, measured as the regression
    // tests pin it: analyze, swap the code under the same address, then
    // re-analyze through the same (warm) pipeline — count addresses whose
    // second verdict describes generation 2.
    let swaps = per_class.max(8);
    let mut chain = Chain::new();
    let etherscan = Etherscan::new();
    let deployer = chain.new_funded_account();
    let logic = chain
        .install_new(
            deployer,
            compile(&templates::simple_logic("L")).unwrap().runtime,
        )
        .unwrap();
    let morphs: Vec<_> = (0..swaps)
        .map(|i| {
            let address = chain
                .install_new(
                    deployer,
                    compile(&templates::custom_slot_proxy(&format!("M{i}"), 2))
                        .unwrap()
                        .runtime,
                )
                .unwrap();
            chain.set_storage(address, U256::from(2u64), U256::from(logic));
            address
        })
        .collect();
    let warm = Pipeline::new(PipelineConfig::default());
    let first = warm.analyze(&chain, &etherscan, &morphs);
    let gen1_proxies = first.proxy_count();
    for (i, &morph) in morphs.iter().enumerate() {
        chain.selfdestruct(morph).unwrap();
        let runtime = if i % 2 == 0 {
            compile(&templates::plain_token(&format!("T{i}")))
                .unwrap()
                .runtime
        } else {
            compile(&templates::eip1967_proxy(&format!("P{i}")))
                .unwrap()
                .runtime
        };
        chain.redeploy(deployer, morph, runtime).unwrap();
        if i % 2 != 0 {
            chain.set_storage(
                morph,
                proxion_solc::SlotSpec::eip1967_implementation().to_u256(),
                U256::from(logic),
            );
        }
    }
    let second = warm.analyze(&chain, &etherscan, &morphs);
    let mut invalidation_correct = 0usize;
    for (i, &morph) in morphs.iter().enumerate() {
        let r = second.reports.iter().find(|r| r.address == morph).unwrap();
        let expect_proxy = i % 2 != 0;
        let fresh = r.check.is_proxy() == expect_proxy
            && (!expect_proxy
                || r.delegation.as_ref().is_some_and(|d| {
                    d.terminal == logic
                        && d.entry_storage_slot()
                            == Some(proxion_solc::SlotSpec::eip1967_implementation().to_u256())
                }));
        if fresh {
            invalidation_correct += 1;
        }
    }
    println!(
        "\nmetamorphic invalidation: {invalidation_correct}/{swaps} post-swap verdicts correct \
         ({gen1_proxies}/{swaps} generation-1 proxies cached first)"
    );

    // Wall-clock: raw detection over the adversarial population vs a
    // standard-EIP landscape of the same size.
    let standard = Landscape::generate(&LandscapeConfig {
        seed: 0xadbe,
        total_contracts: entries.len(),
    });
    let standard_entries: Vec<_> = standard.contracts.iter().map(|c| c.address).collect();
    let detector = ProxyDetector::new();
    let started = Instant::now();
    let adv_found = entries
        .iter()
        .filter(|&&a| detector.check(&corpus.chain, a).is_proxy())
        .count();
    let adv_detect = started.elapsed();
    let started = Instant::now();
    let std_found = standard_entries
        .iter()
        .filter(|&&a| detector.check(&standard.chain, a).is_proxy())
        .count();
    let std_detect = started.elapsed();
    println!(
        "\ndetection wall-clock: adversarial {:>8.3} ms/contract ({adv_found} proxies), \
         standard {:>8.3} ms/contract ({std_found} proxies)",
        adv_detect.as_secs_f64() * 1000.0 / entries.len() as f64,
        std_detect.as_secs_f64() * 1000.0 / standard_entries.len() as f64,
    );
    println!(
        "full pipeline (adversarial, collisions on): {:>8.3} ms/contract, {} proxies, {} multi-hop",
        adv_elapsed.as_secs_f64() * 1000.0 / entries.len() as f64,
        report.proxy_count(),
        report.multi_hop_proxy_count(),
    );
}
