//! Regenerates **Figure 6**: the histogram of logic-contract upgrade
//! counts, recovered with Algorithm 1.

use proxion_bench::{header, pct, standard_landscape};
use proxion_core::{Pipeline, PipelineConfig};

fn main() {
    let landscape = standard_landscape();
    header(&format!(
        "Figure 6: upgrade counts ({} contracts)",
        landscape.contracts.len()
    ));

    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: true,
        check_collisions: false,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");

    let mut histogram: Vec<(usize, usize)> = Vec::new();
    let mut upgraded = 0usize;
    let mut total_events = 0usize;
    let mut slot_proxies = 0usize;
    let mut total_logics = 0usize;
    for r in report.proxies() {
        let Some(history) = r.history.as_ref() else {
            continue;
        };
        slot_proxies += 1;
        let upgrades = history.upgrade_count();
        total_logics += history.addresses.len();
        if upgrades > 0 {
            upgraded += 1;
            total_events += upgrades;
        }
        match histogram.iter_mut().find(|(u, _)| *u == upgrades) {
            Some((_, c)) => *c += 1,
            None => histogram.push((upgrades, 1)),
        }
    }
    histogram.sort_unstable();

    println!("{:<10} | {:>8}  (log-scale bar)", "#upgrades", "proxies");
    println!("{}", "-".repeat(50));
    for (upgrades, count) in &histogram {
        let bar = ((*count as f64).ln().max(0.0) * 6.0) as usize;
        println!(
            "{:<10} | {:>8}  {}",
            upgrades,
            count,
            "#".repeat(bar.max(1))
        );
    }
    println!();
    let never = slot_proxies - upgraded;
    println!(
        "Slot-based proxies analyzed: {slot_proxies}; never upgraded: {never} ({:.1}%)",
        pct(never, slot_proxies)
    );
    if upgraded > 0 {
        println!(
            "Upgraded proxies: {upgraded}; total upgrade events: {total_events}; \
             mean logic contracts per upgraded proxy: {:.2}",
            total_logics.saturating_sub(never) as f64 / upgraded as f64
        );
    }
    println!("(paper: 99.7% of proxies never upgrade; 51,925 upgraded proxies,");
    println!(" 68,804 upgrade events, 1.32 logic contracts on average.)");
}
