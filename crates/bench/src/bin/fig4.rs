//! Regenerates **Figure 4**: the accumulated number of proxy/logic pairs
//! identified by Proxion, split by source-code availability of the two
//! sides.

use std::collections::HashMap;

use proxion_bench::{header, pct, standard_landscape, YearSeries};
use proxion_core::{Pipeline, PipelineConfig};
use proxion_dataset::params::YEARS;
use proxion_primitives::Address;

fn main() {
    let landscape = standard_landscape();
    header(&format!(
        "Figure 4: proxy/logic pairs by source availability ({} contracts)",
        landscape.contracts.len()
    ));

    let pipeline = Pipeline::new(PipelineConfig {
        parallelism: 8,
        resolve_history: false,
        check_collisions: false,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    });
    let report = pipeline
        .analyze_all(&landscape.chain, &landscape.etherscan)
        .expect("in-memory chain reads are infallible");
    let year_of: HashMap<Address, u16> = landscape
        .contracts
        .iter()
        .map(|c| (c.address, c.year))
        .collect();

    let mut both = YearSeries::new();
    let mut only_logic = YearSeries::new();
    let mut only_proxy = YearSeries::new();
    let mut neither = YearSeries::new();
    let mut pair_count = 0usize;
    for r in report.proxies() {
        let Some(logic) = r.check.logic().filter(|l| !l.is_zero()) else {
            continue;
        };
        let Some(&year) = year_of.get(&r.address) else {
            continue;
        };
        pair_count += 1;
        let proxy_src = landscape.etherscan.effective_source(r.address).is_some();
        let logic_src = landscape.etherscan.effective_source(logic).is_some();
        let series = match (proxy_src, logic_src) {
            (true, true) => &mut both,
            (false, true) => &mut only_logic,
            (true, false) => &mut only_proxy,
            (false, false) => &mut neither,
        };
        series.add(year, 1);
    }

    println!(
        "{:<6} | {:>10} {:>12} {:>12} {:>10}",
        "Year", "both-src", "logic-only", "proxy-only", "neither"
    );
    println!("{}", "-".repeat(60));
    for year in YEARS {
        println!(
            "{:<6} | {:>10} {:>12} {:>12} {:>10}",
            year,
            both.cumulative(year),
            only_logic.cumulative(year),
            only_proxy.cumulative(year),
            neither.cumulative(year)
        );
    }
    println!();
    let no_proxy_src = (only_logic.total() + neither.total()) as usize;
    println!(
        "Pairs: {pair_count}; proxies without source: {no_proxy_src} ({:.1}%)",
        pct(no_proxy_src, pair_count)
    );
    println!("(paper: ~90% of proxy contracts lack source; hidden proxies ≈ 1.5M.)");
}
