//! Regenerates the **§6.1 performance** numbers: per-contract proxy-check
//! latency and throughput, collision-check latencies, `getStorageAt`
//! calls per proxy, and the effect of bytecode-hash deduplication.

use std::time::Instant;

use proxion_bench::{header, standard_landscape};
use proxion_chain::CountingSource;
use proxion_core::{
    FunctionCollisionDetector, ImplSource, LogicResolver, Pipeline, PipelineConfig, ProxyCheck,
    ProxyDetector, StorageCollisionDetector,
};

fn main() {
    let landscape = standard_landscape();
    let total = landscape.contracts.len();
    header(&format!("§6.1 performance ({total} contracts)"));

    // ---- proxy detection throughput (no dedup: every contract fresh) ----
    let detector = ProxyDetector::new();
    let start = Instant::now();
    let mut proxies = Vec::new();
    for c in &landscape.contracts {
        if let ProxyCheck::Proxy {
            logic, impl_source, ..
        } = detector.check(&landscape.chain, c.address)
        {
            proxies.push((c.address, logic, impl_source));
        }
    }
    let elapsed = start.elapsed();
    let per_contract_ms = elapsed.as_secs_f64() * 1000.0 / total as f64;
    println!(
        "proxy check:        {:>10.3} ms/contract   {:>10.1} contracts/s   ({} proxies found)",
        per_contract_ms,
        total as f64 / elapsed.as_secs_f64(),
        proxies.len()
    );
    println!("                    (paper: 6.4 ms/contract, 156.3 contracts/s)");

    // ---- logic resolution: getStorageAt calls per proxy ----
    // The provider-layer decorator counts the backend reads Algorithm 1
    // actually issues (the paper's getStorageAt budget, §6.1).
    let resolver = LogicResolver::new();
    let counted = CountingSource::new(&landscape.chain);
    let slot_proxies: Vec<_> = proxies
        .iter()
        .filter_map(|(address, _, impl_source)| match impl_source {
            ImplSource::StorageSlot(slot) => Some((*address, *slot)),
            _ => None,
        })
        .collect();
    let start = Instant::now();
    for &(address, slot) in &slot_proxies {
        let _ = resolver.resolve(&counted, address, slot);
    }
    let resolve_elapsed = start.elapsed();
    if !slot_proxies.is_empty() {
        let calls = counted.counts().storage_at;
        println!(
            "logic resolution:   {:>10.1} getStorageAt calls/proxy over {} blocks ({} slot proxies, {:.3} ms each)",
            calls as f64 / slot_proxies.len() as f64,
            landscape.chain.head_block(),
            slot_proxies.len(),
            resolve_elapsed.as_secs_f64() * 1000.0 / slot_proxies.len() as f64,
        );
        println!("                    (paper: ~26 calls/proxy vs ~15M blocks for a linear scan)");
    }

    // ---- collision-check latencies ----
    let pairs: Vec<_> = proxies
        .iter()
        .filter(|(_, logic, _)| !logic.is_zero())
        .take(200)
        .collect();
    if !pairs.is_empty() {
        let functions = FunctionCollisionDetector::new();
        let start = Instant::now();
        for (proxy, logic, _) in &pairs {
            let _ = functions.check_pair(&landscape.chain, &landscape.etherscan, *proxy, *logic);
        }
        let fn_ms = start.elapsed().as_secs_f64() * 1000.0 / pairs.len() as f64;
        println!(
            "function collision: {:>10.3} ms/pair        (paper: 6.7 ms/pair)",
            fn_ms
        );

        let storage = StorageCollisionDetector::new();
        let start = Instant::now();
        for (proxy, logic, _) in &pairs {
            let _ = storage.check_pair(&landscape.chain, *proxy, *logic);
        }
        let st_ms = start.elapsed().as_secs_f64() * 1000.0 / pairs.len() as f64;
        println!(
            "storage collision:  {:>10.3} ms/pair        (paper: 1.3 min/pair pre-dedup)",
            st_ms
        );
    }

    // ---- dedup ablation: full pipeline with and without duplicate reuse ----
    let start = Instant::now();
    let with_dedup = Pipeline::new(PipelineConfig {
        parallelism: 1,
        resolve_history: false,
        check_collisions: true,
        check_historical_pairs: false,
        ..PipelineConfig::default()
    })
    .analyze_all(&landscape.chain, &landscape.etherscan)
    .expect("in-memory chain reads are infallible");
    let dedup_time = start.elapsed();
    println!(
        "full pipeline:      {:>10.2} s with bytecode-hash dedup ({} contracts, {} proxies)",
        dedup_time.as_secs_f64(),
        with_dedup.total(),
        with_dedup.proxy_count()
    );
    println!("                    (paper: dedup cuts the 36M-contract storage scan to 48 days)");
}
