//! Function-selector extraction from bytecode.
//!
//! The paper's key observation (§5.1): function signatures always follow a
//! `PUSH4`, but not every `PUSH4` immediate is a signature — embedded data
//! and `abi.encodeWithSignature` constants also follow `PUSH4`. Proxion
//! therefore only accepts 4-byte immediates that participate in a
//! *dispatcher comparison*: the selector is compared (`EQ`, or `GT`/`LT`
//! for split dispatchers) against the call-data selector and the result
//! feeds a conditional jump into a function body.

use std::collections::BTreeSet;

use proxion_asm::opcode;

use crate::cfg::Cfg;
use crate::insn::Disassembly;

/// The dispatcher structure recovered from a contract.
#[derive(Debug, Clone, Default)]
pub struct DispatcherInfo {
    /// Selectors compared in the dispatcher (the contract's external
    /// function surface).
    pub selectors: BTreeSet<[u8; 4]>,
    /// Whether the canonical call-data prelude was found
    /// (`CALLDATALOAD; PUSH1 0xe0; SHR` or the legacy `DIV`-by-2^224
    /// form).
    pub has_calldata_prelude: bool,
}

impl DispatcherInfo {
    /// Returns `true` if the dispatcher compares at least one selector.
    pub fn has_functions(&self) -> bool {
        !self.selectors.is_empty()
    }
}

/// Extracts the dispatcher selector set of a contract.
///
/// A `PUSH4` immediate is accepted as a selector iff, within a short
/// window after it (allowing stack-shuffling `DUP`s), a comparison opcode
/// (`EQ`, `GT`, `LT`) executes whose result — possibly through `ISZERO` —
/// feeds a `JUMPI`. This is exactly the code shape every known compiler
/// emits for function dispatch, and it excludes `PUSH4` immediates that
/// are embedded data or call-encoding constants.
///
/// # Examples
///
/// ```
/// use proxion_disasm::{extract_dispatcher_selectors, Disassembly};
/// use proxion_asm::opcode as op;
///
/// // DUP1 PUSH4 0xdf4a3106 EQ PUSH2 0x0010 JUMPI ... (dispatcher entry)
/// let code = [
///     op::DUP1, op::PUSH4, 0xdf, 0x4a, 0x31, 0x06, op::EQ,
///     op::PUSH2, 0x00, 0x10, op::JUMPI, op::STOP,
/// ];
/// let info = extract_dispatcher_selectors(&Disassembly::new(&code));
/// assert!(info.selectors.contains(&[0xdf, 0x4a, 0x31, 0x06]));
/// ```
pub fn extract_dispatcher_selectors(disasm: &Disassembly) -> DispatcherInfo {
    let instructions = disasm.instructions();
    let mut info = DispatcherInfo::default();

    // Prelude detection: CALLDATALOAD ... SHR (new) or ... DIV (legacy).
    for window in instructions.windows(3) {
        if window[0].opcode == opcode::CALLDATALOAD
            && window[1].is_push()
            && matches!(window[2].opcode, opcode::SHR | opcode::DIV)
        {
            info.has_calldata_prelude = true;
            break;
        }
    }

    for (i, insn) in instructions.iter().enumerate() {
        if insn.opcode != opcode::PUSH4 || insn.immediate.len() != 4 {
            continue;
        }
        if selector_feeds_dispatch(instructions, i) {
            let mut sel = [0u8; 4];
            sel.copy_from_slice(&insn.immediate);
            info.selectors.insert(sel);
        }
    }
    info
}

/// Checks whether the `PUSH4` at instruction index `i` participates in a
/// dispatcher comparison.
fn selector_feeds_dispatch(instructions: &[crate::insn::Instruction], i: usize) -> bool {
    // Phase 1: find a comparison within 3 instructions, skipping DUPs.
    let mut j = i + 1;
    let mut skipped = 0;
    let cmp_index = loop {
        let Some(insn) = instructions.get(j) else {
            return false;
        };
        match insn.opcode {
            op if (opcode::DUP1..=opcode::DUP16).contains(&op) && skipped < 3 => {
                skipped += 1;
                j += 1;
            }
            opcode::EQ | opcode::GT | opcode::LT => break j,
            // `SUB` + `ISZERO` is an equality idiom used by some
            // hand-written dispatchers.
            opcode::SUB
                if instructions
                    .get(j + 1)
                    .is_some_and(|n| n.opcode == opcode::ISZERO) =>
            {
                break j + 1;
            }
            _ => return false,
        }
    };
    // Phase 2: the comparison result must reach a JUMPI within 3
    // instructions, through optional ISZEROs and the pushed destination.
    let mut k = cmp_index + 1;
    let mut steps = 0;
    while steps < 4 {
        let Some(insn) = instructions.get(k) else {
            return false;
        };
        match insn.opcode {
            opcode::JUMPI => return true,
            opcode::ISZERO => {}
            op if opcode::is_push(op) => {}
            _ => return false,
        }
        k += 1;
        steps += 1;
    }
    false
}

/// The naive selector extraction: every well-formed `PUSH4` immediate in a
/// *statically reachable* basic block. This is the flawed method the paper
/// describes (§3.1) — reachable `abi.encodeWithSignature` constants are
/// still included, which is what Proxion's ablation benchmark measures
/// against [`extract_dispatcher_selectors`] — but restricting the sweep to
/// [`Cfg::reachable_offsets`] keeps `PUSH4`-shaped bytes inside embedded
/// `CREATE` init/runtime payloads (factory contracts) out of the set: the
/// linear sweep decodes those data bytes as instructions, yet no static
/// edge ever enters them.
pub fn naive_push4_selectors(disasm: &Disassembly, cfg: &Cfg) -> BTreeSet<[u8; 4]> {
    let reachable = cfg.reachable_offsets();
    let instructions = disasm.instructions();
    let mut out = BTreeSet::new();
    for block in cfg.blocks() {
        if !reachable.contains(&block.start_offset) {
            continue;
        }
        for insn in &instructions[block.first..=block.last] {
            if insn.opcode == opcode::PUSH4 && insn.immediate.len() == 4 {
                let mut sel = [0u8; 4];
                sel.copy_from_slice(&insn.immediate);
                out.insert(sel);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxion_asm::opcode as op;

    fn selectors_of(code: &[u8]) -> BTreeSet<[u8; 4]> {
        extract_dispatcher_selectors(&Disassembly::new(code)).selectors
    }

    const SEL: [u8; 4] = [0xde, 0xad, 0xbe, 0xef];

    #[test]
    fn solc_linear_dispatcher_entry() {
        let code = [
            op::DUP1,
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::EQ,
            op::PUSH2,
            0x00,
            0x20,
            op::JUMPI,
            op::STOP,
        ];
        assert!(selectors_of(&code).contains(&SEL));
    }

    #[test]
    fn dup_between_push_and_eq() {
        // PUSH4 sel; DUP2; EQ; PUSH2; JUMPI
        let code = [
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::DUP2,
            op::EQ,
            op::PUSH2,
            0x00,
            0x20,
            op::JUMPI,
        ];
        assert!(selectors_of(&code).contains(&SEL));
    }

    #[test]
    fn split_dispatcher_gt_pivot_accepted() {
        let code = [
            op::DUP1,
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::GT,
            op::PUSH2,
            0x00,
            0x20,
            op::JUMPI,
        ];
        assert!(selectors_of(&code).contains(&SEL));
    }

    #[test]
    fn iszero_negated_comparison_accepted() {
        let code = [
            op::DUP1,
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::EQ,
            op::ISZERO,
            op::PUSH2,
            0x00,
            0x20,
            op::JUMPI,
        ];
        assert!(selectors_of(&code).contains(&SEL));
    }

    #[test]
    fn sub_iszero_equality_idiom_accepted() {
        let code = [
            op::DUP1,
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::SUB,
            op::ISZERO,
            op::PUSH2,
            0x00,
            0x20,
            op::JUMPI,
        ];
        assert!(selectors_of(&code).contains(&SEL));
    }

    #[test]
    fn encode_with_signature_constant_rejected() {
        // PUSH4 sel; PUSH1 0xe0; SHL; ... — building call data, not
        // dispatching.
        let code = [
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::PUSH1,
            0xe0,
            op::SHL,
            op::PUSH0,
            op::MSTORE,
            op::STOP,
        ];
        assert!(selectors_of(&code).is_empty());
    }

    #[test]
    fn embedded_data_after_push4_rejected() {
        let code = [op::PUSH4, 0xde, 0xad, 0xbe, 0xef, op::POP, op::STOP];
        assert!(selectors_of(&code).is_empty());
    }

    #[test]
    fn comparison_without_jumpi_rejected() {
        // EQ result consumed by MSTORE, not a jump.
        let code = [
            op::DUP1,
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::EQ,
            op::PUSH0,
            op::MSTORE,
            op::STOP,
        ];
        assert!(selectors_of(&code).is_empty());
    }

    #[test]
    fn naive_extraction_includes_everything() {
        let code = [
            // dispatcher entry
            op::DUP1,
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::EQ,
            op::PUSH2,
            0x00,
            0x20,
            op::JUMPI,
            // junk constant
            op::PUSH4,
            0x01,
            0x02,
            0x03,
            0x04,
            op::POP,
        ];
        let d = Disassembly::new(&code);
        let naive = naive_push4_selectors(&d, &Cfg::new(&d));
        let precise = extract_dispatcher_selectors(&d).selectors;
        assert_eq!(naive.len(), 2);
        assert_eq!(precise.len(), 1);
        assert!(naive.is_superset(&precise));
    }

    #[test]
    fn factory_embedded_payload_push4_excluded_from_naive() {
        // A factory-style contract: a reachable dispatcher entry returns,
        // and the bytes after it are an embedded child init/runtime
        // payload (what CODECOPY + CREATE would deploy). The payload
        // contains PUSH4-shaped data that the linear sweep decodes but
        // that no static edge ever reaches.
        use proxion_asm::Assembler;
        let embedded_payload = [
            op::PUSH4,
            0xba,
            0xdc,
            0x0f,
            0xfe,
            op::POP,
            op::PUSH0,
            op::PUSH0,
            op::RETURN,
        ];
        let mut asm = Assembler::new();
        let body = asm.new_label();
        asm.op(op::DUP1)
            .push_bytes(&SEL)
            .op(op::EQ)
            .jumpi_to(body)
            .op(op::STOP)
            .label(body)
            .op(op::STOP)
            .raw(&embedded_payload);
        let code = asm.assemble().unwrap();
        let d = Disassembly::new(&code);
        let naive = naive_push4_selectors(&d, &Cfg::new(&d));
        assert!(naive.contains(&SEL), "reachable dispatcher PUSH4 kept");
        assert!(
            !naive.contains(&[0xba, 0xdc, 0x0f, 0xfe]),
            "PUSH4 inside the embedded payload must be excluded"
        );
        // The unrestricted immediate sweep *does* see the payload bytes —
        // that is exactly the §3.1 false positive being regression-tested.
        assert!(d.push4_immediates().contains(&[0xba, 0xdc, 0x0f, 0xfe]));
    }

    #[test]
    fn prelude_detection() {
        let with_shr = [
            op::PUSH0,
            op::CALLDATALOAD,
            op::PUSH1,
            0xe0,
            op::SHR,
            op::STOP,
        ];
        let info = extract_dispatcher_selectors(&Disassembly::new(&with_shr));
        assert!(info.has_calldata_prelude);
        assert!(!info.has_functions());

        // Legacy compilers divide by 2^224 instead of shifting; the
        // divisor constant is pushed right before the DIV.
        let legacy_div = [
            op::PUSH0,
            op::CALLDATALOAD,
            op::PUSH8,
            0x01,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            op::DIV,
            op::STOP,
        ];
        let info = extract_dispatcher_selectors(&Disassembly::new(&legacy_div));
        assert!(info.has_calldata_prelude);

        let none = [op::PUSH0, op::MSTORE, op::STOP];
        let info = extract_dispatcher_selectors(&Disassembly::new(&none));
        assert!(!info.has_calldata_prelude);
    }

    #[test]
    fn multiple_selectors_collected() {
        #[rustfmt::skip]
        let code = [
            op::DUP1, op::PUSH4, 1, 1, 1, 1, op::EQ, op::PUSH2, 0, 0x30, op::JUMPI,
            op::DUP1, op::PUSH4, 2, 2, 2, 2, op::EQ, op::PUSH2, 0, 0x40, op::JUMPI,
            op::DUP1, op::PUSH4, 3, 3, 3, 3, op::EQ, op::PUSH2, 0, 0x50, op::JUMPI,
            op::STOP,
        ];
        let sels = selectors_of(&code);
        assert_eq!(sels.len(), 3);
        assert!(sels.contains(&[2, 2, 2, 2]));
    }
}
