//! Linear-sweep disassembly of EVM bytecode.

use std::collections::BTreeSet;
use std::fmt;

use proxion_asm::opcode;
use proxion_primitives::{encode_hex, U256};

/// One decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Byte offset of the opcode within the code.
    pub offset: usize,
    /// The opcode byte (possibly undefined).
    pub opcode: u8,
    /// Immediate bytes for `PUSH1..PUSH32` (empty otherwise). Truncated
    /// immediates at the end of code are kept at their actual length.
    pub immediate: Vec<u8>,
}

impl Instruction {
    /// Mnemonic for display; undefined opcodes render as `INVALID(0xXX)`.
    pub fn mnemonic(&self) -> String {
        match opcode::info(self.opcode) {
            Some(info) => info.name.to_string(),
            None => format!("INVALID(0x{:02x})", self.opcode),
        }
    }

    /// Returns `true` if this instruction is a defined opcode.
    pub fn is_defined(&self) -> bool {
        opcode::info(self.opcode).is_some()
    }

    /// Returns `true` for `PUSH0..PUSH32`.
    pub fn is_push(&self) -> bool {
        opcode::is_push(self.opcode)
    }

    /// The push immediate as a 256-bit value (zero-extended), or `None`
    /// for non-push instructions.
    pub fn push_value(&self) -> Option<U256> {
        if self.is_push() {
            Some(U256::from_be_slice(&self.immediate))
        } else {
            None
        }
    }

    /// Total encoded length in bytes.
    pub fn len(&self) -> usize {
        1 + self.immediate.len()
    }

    /// Always `false`: an instruction occupies at least its opcode byte.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Byte offset of the *next* instruction.
    pub fn next_offset(&self) -> usize {
        self.offset + self.len()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.immediate.is_empty() {
            write!(f, "{:04x}: {}", self.offset, self.mnemonic())
        } else {
            write!(
                f,
                "{:04x}: {} 0x{}",
                self.offset,
                self.mnemonic(),
                encode_hex(&self.immediate)
            )
        }
    }
}

/// A disassembled contract.
///
/// Disassembly is a linear sweep: every byte is decoded exactly once, with
/// push immediates skipped. This matches how the EVM itself delimits
/// instructions and how Octopus (the tool the paper builds on) operates.
#[derive(Debug, Clone)]
pub struct Disassembly {
    instructions: Vec<Instruction>,
    code_len: usize,
    /// Byte offsets that are valid `JUMPDEST`s.
    jumpdests: BTreeSet<usize>,
}

impl Disassembly {
    /// Disassembles runtime bytecode.
    pub fn new(code: &[u8]) -> Self {
        let mut instructions = Vec::new();
        let mut jumpdests = BTreeSet::new();
        let mut offset = 0;
        while offset < code.len() {
            let op = code[offset];
            let imm_len = opcode::immediate_len(op);
            let end = (offset + 1 + imm_len).min(code.len());
            if op == opcode::JUMPDEST {
                jumpdests.insert(offset);
            }
            instructions.push(Instruction {
                offset,
                opcode: op,
                immediate: code[offset + 1..end].to_vec(),
            });
            offset = offset + 1 + imm_len;
        }
        Disassembly {
            instructions,
            code_len: code.len(),
            jumpdests,
        }
    }

    /// The decoded instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Original code length in bytes.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Returns `true` if any instruction has the given opcode.
    pub fn contains(&self, op: u8) -> bool {
        self.instructions.iter().any(|i| i.opcode == op)
    }

    /// Byte offsets that hold valid `JUMPDEST`s.
    pub fn jumpdests(&self) -> &BTreeSet<usize> {
        &self.jumpdests
    }

    /// Index of the instruction at byte `offset`, if one starts there.
    pub fn index_at_offset(&self, offset: usize) -> Option<usize> {
        self.instructions
            .binary_search_by_key(&offset, |i| i.offset)
            .ok()
    }

    /// Every `PUSH4` immediate in the code, **including** false positives
    /// such as embedded data and `abi.encodeWithSignature` constants — the
    /// naive selector extraction the paper warns against (§3.1).
    pub fn push4_immediates(&self) -> Vec<[u8; 4]> {
        self.instructions
            .iter()
            .filter(|i| i.opcode == opcode::PUSH4 && i.immediate.len() == 4)
            .map(|i| {
                let mut out = [0u8; 4];
                out.copy_from_slice(&i.immediate);
                out
            })
            .collect()
    }

    /// Every push immediate interpreted as a value, regardless of width.
    pub fn push_values(&self) -> impl Iterator<Item = U256> + '_ {
        self.instructions.iter().filter_map(Instruction::push_value)
    }

    /// Renders the full listing (one instruction per line).
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for insn in &self.instructions {
            out.push_str(&insn.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxion_asm::opcode as op;

    #[test]
    fn decodes_simple_sequence() {
        let code = [op::PUSH1, 0x80, op::PUSH1, 0x40, op::MSTORE, op::STOP];
        let d = Disassembly::new(&code);
        let ops: Vec<u8> = d.instructions().iter().map(|i| i.opcode).collect();
        assert_eq!(ops, vec![op::PUSH1, op::PUSH1, op::MSTORE, op::STOP]);
        assert_eq!(d.instructions()[0].immediate, vec![0x80]);
        assert_eq!(d.instructions()[2].offset, 4);
        assert_eq!(d.code_len(), 6);
    }

    #[test]
    fn truncated_push_at_end() {
        let code = [op::PUSH4, 0xaa, 0xbb];
        let d = Disassembly::new(&code);
        assert_eq!(d.instructions().len(), 1);
        assert_eq!(d.instructions()[0].immediate, vec![0xaa, 0xbb]);
        // Truncated PUSH4 immediates are not valid 4-byte selectors.
        assert!(d.push4_immediates().is_empty());
    }

    #[test]
    fn jumpdest_inside_immediate_not_counted() {
        let code = [op::PUSH2, 0x5b, 0x5b, op::JUMPDEST];
        let d = Disassembly::new(&code);
        assert_eq!(d.jumpdests().len(), 1);
        assert!(d.jumpdests().contains(&3));
    }

    #[test]
    fn contains_and_push4() {
        let code = [
            op::PUSH4,
            0xde,
            0xad,
            0xbe,
            0xef,
            op::DELEGATECALL,
            op::STOP,
        ];
        let d = Disassembly::new(&code);
        assert!(d.contains(op::DELEGATECALL));
        assert!(!d.contains(op::CALL));
        assert_eq!(d.push4_immediates(), vec![[0xde, 0xad, 0xbe, 0xef]]);
    }

    #[test]
    fn undefined_opcodes_decoded() {
        let code = [0x0c, 0xef, op::STOP];
        let d = Disassembly::new(&code);
        assert_eq!(d.instructions().len(), 3);
        assert!(!d.instructions()[0].is_defined());
        assert_eq!(d.instructions()[0].mnemonic(), "INVALID(0x0c)");
    }

    #[test]
    fn index_at_offset_lookup() {
        let code = [op::PUSH2, 0x00, 0x01, op::STOP];
        let d = Disassembly::new(&code);
        assert_eq!(d.index_at_offset(0), Some(0));
        assert_eq!(d.index_at_offset(3), Some(1));
        assert_eq!(
            d.index_at_offset(1),
            None,
            "mid-immediate is not an instruction"
        );
    }

    #[test]
    fn push_values_and_listing() {
        let code = [op::PUSH0, op::PUSH1, 0xff, op::STOP];
        let d = Disassembly::new(&code);
        let values: Vec<U256> = d.push_values().collect();
        assert_eq!(values, vec![U256::ZERO, U256::from(0xffu64)]);
        let listing = d.listing();
        assert!(listing.contains("0000: PUSH0"));
        assert!(listing.contains("PUSH1 0xff"));
    }

    #[test]
    fn instruction_display_and_len() {
        let code = [op::PUSH1, 0xaa];
        let d = Disassembly::new(&code);
        let i = &d.instructions()[0];
        assert_eq!(i.to_string(), "0000: PUSH1 0xaa");
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        assert_eq!(i.next_offset(), 2);
    }
}
