//! Basic-block recovery and a static control-flow graph.

use std::collections::{BTreeMap, BTreeSet};

use proxion_asm::opcode;

use crate::insn::Disassembly;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockTerminator {
    /// Unconditional `JUMP`.
    Jump,
    /// Conditional `JUMPI` (fallthrough edge plus jump edge).
    JumpI,
    /// `STOP`, `RETURN`, `REVERT`, `INVALID`, `SELFDESTRUCT` or an
    /// undefined opcode.
    Halt,
    /// Execution falls through into the next block (e.g. the next byte is
    /// a `JUMPDEST` starting a new block).
    FallThrough,
    /// The block runs off the end of the code (implicit `STOP`).
    EndOfCode,
}

/// A maximal straight-line instruction sequence.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Index of the first instruction (into [`Disassembly::instructions`]).
    pub first: usize,
    /// Index of the last instruction, inclusive.
    pub last: usize,
    /// Byte offset of the first instruction.
    pub start_offset: usize,
    /// How the block ends.
    pub terminator: BlockTerminator,
    /// Statically known successor *byte offsets*.
    pub successors: Vec<usize>,
}

/// A static control-flow graph over basic blocks.
///
/// Jump edges are resolved only when the jump target is a constant pushed
/// by the immediately preceding instruction (`PUSH2 dest; JUMP`), which is
/// the pattern every known compiler emits. Computed jumps get no static
/// edge — the analyses that need those run the real interpreter instead.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Map from start byte offset to block index.
    by_offset: BTreeMap<usize, usize>,
}

impl Cfg {
    /// Builds the CFG for a disassembled contract.
    pub fn new(disasm: &Disassembly) -> Self {
        let instructions = disasm.instructions();
        // Pass 1: find block leader byte offsets.
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        if !instructions.is_empty() {
            leaders.insert(0);
        }
        for (idx, insn) in instructions.iter().enumerate() {
            match insn.opcode {
                opcode::JUMPDEST => {
                    leaders.insert(insn.offset);
                }
                op if opcode::is_terminator(op) || op == opcode::JUMPI => {
                    if let Some(next) = instructions.get(idx + 1) {
                        leaders.insert(next.offset);
                    }
                }
                op if opcode::info(op).is_none() => {
                    if let Some(next) = instructions.get(idx + 1) {
                        leaders.insert(next.offset);
                    }
                }
                _ => {}
            }
        }
        // Pass 2: slice instruction ranges into blocks.
        let mut blocks = Vec::new();
        let mut by_offset = BTreeMap::new();
        let mut current_first: Option<usize> = None;
        for (idx, insn) in instructions.iter().enumerate() {
            if leaders.contains(&insn.offset) && current_first.is_some() {
                // Close the running block as a fallthrough.
                let first = current_first.take().expect("checked is_some");
                Self::push_block(
                    &mut blocks,
                    &mut by_offset,
                    instructions,
                    first,
                    idx - 1,
                    disasm,
                );
            }
            if current_first.is_none() {
                current_first = Some(idx);
            }
            let ends_block = opcode::is_terminator(insn.opcode)
                || insn.opcode == opcode::JUMPI
                || opcode::info(insn.opcode).is_none();
            if ends_block {
                let first = current_first.take().expect("set above");
                Self::push_block(
                    &mut blocks,
                    &mut by_offset,
                    instructions,
                    first,
                    idx,
                    disasm,
                );
            }
        }
        if let Some(first) = current_first {
            Self::push_block(
                &mut blocks,
                &mut by_offset,
                instructions,
                first,
                instructions.len() - 1,
                disasm,
            );
        }
        Cfg { blocks, by_offset }
    }

    fn push_block(
        blocks: &mut Vec<BasicBlock>,
        by_offset: &mut BTreeMap<usize, usize>,
        instructions: &[crate::insn::Instruction],
        first: usize,
        last: usize,
        disasm: &Disassembly,
    ) {
        let last_insn = &instructions[last];
        let next_offset = last_insn.next_offset();
        let has_next = last + 1 < instructions.len();

        let (terminator, mut successors) = match last_insn.opcode {
            opcode::JUMP => (BlockTerminator::Jump, Vec::new()),
            opcode::JUMPI => {
                let mut succ = Vec::new();
                if has_next {
                    succ.push(next_offset);
                }
                (BlockTerminator::JumpI, succ)
            }
            op if opcode::is_terminator(op) || opcode::info(op).is_none() => {
                (BlockTerminator::Halt, Vec::new())
            }
            _ if has_next => (BlockTerminator::FallThrough, vec![next_offset]),
            _ => (BlockTerminator::EndOfCode, Vec::new()),
        };

        // Static jump target: `PUSH dest` immediately before the jump.
        if matches!(last_insn.opcode, opcode::JUMP | opcode::JUMPI) && last > first {
            let prev = &instructions[last - 1];
            if let Some(value) = prev.push_value() {
                if let Some(dest) = value.try_into_usize() {
                    if disasm.jumpdests().contains(&dest) {
                        successors.push(dest);
                    }
                }
            }
        }

        by_offset.insert(instructions[first].offset, blocks.len());
        blocks.push(BasicBlock {
            first,
            last,
            start_offset: instructions[first].offset,
            terminator,
            successors,
        });
    }

    /// All blocks in code order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block starting at byte `offset`, if any.
    pub fn block_at(&self, offset: usize) -> Option<&BasicBlock> {
        self.by_offset.get(&offset).map(|&i| &self.blocks[i])
    }

    /// The entry block (offset 0), if the code is non-empty.
    pub fn entry(&self) -> Option<&BasicBlock> {
        self.blocks.first()
    }

    /// Byte offsets of blocks reachable from the entry following static
    /// edges only.
    pub fn reachable_offsets(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut work = vec![0usize];
        while let Some(offset) = work.pop() {
            if !seen.insert(offset) {
                continue;
            }
            if let Some(block) = self.block_at(offset) {
                for &succ in &block.successors {
                    if !seen.contains(&succ) {
                        work.push(succ);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxion_asm::{opcode as op, Assembler};
    use proxion_primitives::U256;

    fn cfg_of(code: &[u8]) -> (Disassembly, Cfg) {
        let d = Disassembly::new(code);
        let c = Cfg::new(&d);
        (d, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of(&[op::PUSH1, 1, op::PUSH1, 2, op::ADD, op::STOP]);
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].terminator, BlockTerminator::Halt);
        assert!(c.blocks()[0].successors.is_empty());
    }

    #[test]
    fn jumpi_splits_blocks_with_both_edges() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.push(U256::ONE)
            .jumpi_to(l)
            .op(op::STOP)
            .label(l)
            .op(op::STOP);
        let code = asm.assemble().unwrap();
        let (_, c) = cfg_of(&code);
        assert_eq!(c.blocks().len(), 3);
        let b0 = &c.blocks()[0];
        assert_eq!(b0.terminator, BlockTerminator::JumpI);
        assert_eq!(b0.successors.len(), 2, "fallthrough + static target");
        // Jump edge goes to the JUMPDEST block.
        let target = *b0.successors.iter().max().unwrap();
        assert!(c.block_at(target).is_some());
    }

    #[test]
    fn jumpdest_starts_new_block() {
        let code = [op::PUSH1, 0, op::JUMPDEST, op::STOP];
        let (_, c) = cfg_of(&code);
        assert_eq!(c.blocks().len(), 2);
        assert_eq!(c.blocks()[0].terminator, BlockTerminator::FallThrough);
        assert_eq!(c.blocks()[0].successors, vec![2]);
        assert_eq!(c.blocks()[1].start_offset, 2);
    }

    #[test]
    fn computed_jump_has_no_static_edge() {
        // CALLDATALOAD-derived jump target.
        let code = [
            op::PUSH0,
            op::CALLDATALOAD,
            op::JUMP,
            op::JUMPDEST,
            op::STOP,
        ];
        let (_, c) = cfg_of(&code);
        let b0 = &c.blocks()[0];
        assert_eq!(b0.terminator, BlockTerminator::Jump);
        assert!(b0.successors.is_empty());
    }

    #[test]
    fn reachability_follows_static_edges() {
        let mut asm = Assembler::new();
        let reached = asm.new_label();
        let dead = asm.new_label();
        asm.jump_to(reached);
        asm.label(dead).op(op::STOP); // never referenced from entry
        asm.label(reached).op(op::STOP);
        let code = asm.assemble().unwrap();
        let (_, c) = cfg_of(&code);
        let reachable = c.reachable_offsets();
        assert!(reachable.contains(&0));
        let reached_block = c
            .blocks()
            .iter()
            .find(|b| b.start_offset > 0 && reachable.contains(&b.start_offset))
            .unwrap();
        assert_eq!(reached_block.terminator, BlockTerminator::Halt);
        // Dead block exists but is unreachable.
        assert!(c.blocks().len() >= 3);
        assert!(c
            .blocks()
            .iter()
            .any(|b| !reachable.contains(&b.start_offset)));
    }

    #[test]
    fn end_of_code_terminator() {
        let code = [op::PUSH1, 1];
        let (_, c) = cfg_of(&code);
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].terminator, BlockTerminator::EndOfCode);
        assert!(c.entry().is_some());
    }

    #[test]
    fn empty_code_has_no_blocks() {
        let (_, c) = cfg_of(&[]);
        assert!(c.blocks().is_empty());
        assert!(c.entry().is_none());
    }

    #[test]
    fn invalid_opcode_ends_block() {
        let code = [0x0c, op::JUMPDEST, op::STOP];
        let (_, c) = cfg_of(&code);
        assert_eq!(c.blocks().len(), 2);
        assert_eq!(c.blocks()[0].terminator, BlockTerminator::Halt);
    }
}
