//! EVM bytecode disassembler, basic-block/CFG recovery and dispatcher
//! analysis.
//!
//! This crate is Proxion's substitute for the Octopus disassembler the
//! paper extends (§4.1): it turns raw runtime bytecode into an instruction
//! stream, recovers basic blocks and static jump edges, and — crucially for
//! function-collision detection on closed-source contracts (§5.1) —
//! extracts the *dispatcher selector set*: the 4-byte function signatures
//! that are actually compared against call data, as opposed to every 4-byte
//! immediate that merely follows a `PUSH4`.
//!
//! # Examples
//!
//! ```
//! use proxion_disasm::Disassembly;
//!
//! // PUSH1 0x80, PUSH1 0x40, MSTORE, STOP
//! let code = [0x60, 0x80, 0x60, 0x40, 0x52, 0x00];
//! let disasm = Disassembly::new(&code);
//! assert_eq!(disasm.instructions().len(), 4);
//! assert!(!disasm.contains(proxion_asm::opcode::DELEGATECALL));
//! ```

mod cfg;
mod dispatcher;
mod insn;

pub use cfg::{BasicBlock, BlockTerminator, Cfg};
pub use dispatcher::{extract_dispatcher_selectors, naive_push4_selectors, DispatcherInfo};
pub use insn::{Disassembly, Instruction};
