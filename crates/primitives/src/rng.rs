//! A small deterministic random number generator (xoshiro256** seeded via
//! SplitMix64).
//!
//! The dataset generator and the proxy detector's call-data crafting both
//! need reproducible randomness; pinning the algorithm here guarantees that
//! every experiment in the repository is bit-for-bit reproducible regardless
//! of external crate versions.

use crate::{Address, U256};

/// Deterministic RNG (xoshiro256**).
///
/// # Examples
///
/// ```
/// use proxion_primitives::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        DetRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns a uniform value in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Returns a random 4-byte value (e.g. a candidate function selector).
    pub fn next_selector(&mut self) -> [u8; 4] {
        let mut out = [0u8; 4];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a random 256-bit word.
    pub fn next_u256(&mut self) -> U256 {
        let mut bytes = [0u8; 32];
        self.fill_bytes(&mut bytes);
        U256::from_be_bytes(bytes)
    }

    /// Returns a random non-zero address.
    pub fn next_address(&mut self) -> Address {
        loop {
            let mut bytes = [0u8; 20];
            self.fill_bytes(&mut bytes);
            let a = Address(bytes);
            if !a.is_zero() {
                return a;
            }
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples an index from a discrete distribution given by `weights`.
    /// Zero-weight entries are never selected.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(8);
        assert_ne!(DetRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let v = rng.next_range(10, 20);
            assert!((10..=20).contains(&v));
            assert!(rng.next_below(3) < 3);
        }
    }

    #[test]
    fn probability_extremes() {
        let mut rng = DetRng::new(2);
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
        // p outside [0,1] is clamped rather than panicking.
        assert!(rng.next_bool(2.0));
        assert!(!rng.next_bool(-1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = DetRng::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn weighted_choice_respects_zero_weights() {
        let mut rng = DetRng::new(6);
        for _ in 0..1000 {
            let i = rng.choose_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn addresses_and_words_nonzero_and_distinct() {
        let mut rng = DetRng::new(9);
        let a = rng.next_address();
        let b = rng.next_address();
        assert_ne!(a, b);
        assert_ne!(rng.next_u256(), rng.next_u256());
    }
}
