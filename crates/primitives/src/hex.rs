//! Hexadecimal encoding and decoding helpers.

use std::fmt;

/// Error returned when decoding a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseHexError {
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidChar {
        /// The offending character.
        char: char,
        /// Byte index of the character within the (de-prefixed) input.
        index: usize,
    },
    /// The input had an odd number of hex digits.
    OddLength,
    /// The decoded payload had an unexpected length.
    BadLength {
        /// Number of hex digits expected.
        expected: usize,
        /// Number of hex digits found.
        found: usize,
    },
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHexError::InvalidChar { char, index } => {
                write!(f, "invalid hex character {char:?} at index {index}")
            }
            ParseHexError::OddLength => write!(f, "hex string has an odd number of digits"),
            ParseHexError::BadLength { expected, found } => {
                write!(f, "expected {expected} hex digits, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseHexError {}

/// Encodes bytes as a lowercase hex string without a prefix.
///
/// # Examples
///
/// ```
/// use proxion_primitives::encode_hex;
///
/// assert_eq!(encode_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn encode_hex(bytes: impl AsRef<[u8]>) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let bytes = bytes.as_ref();
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Encodes bytes as a lowercase hex string with a `0x` prefix.
///
/// # Examples
///
/// ```
/// use proxion_primitives::encode_hex_prefixed;
///
/// assert_eq!(encode_hex_prefixed(&[0xbe, 0xef]), "0xbeef");
/// ```
pub fn encode_hex_prefixed(bytes: impl AsRef<[u8]>) -> String {
    format!("0x{}", encode_hex(bytes))
}

/// Decodes a hex string (optionally `0x`-prefixed, case-insensitive) into
/// bytes.
///
/// # Errors
///
/// Returns [`ParseHexError`] if the string contains non-hex characters or an
/// odd number of digits.
///
/// # Examples
///
/// ```
/// use proxion_primitives::decode_hex;
///
/// assert_eq!(decode_hex("0xBEef")?, vec![0xbe, 0xef]);
/// # Ok::<(), proxion_primitives::ParseHexError>(())
/// ```
pub fn decode_hex(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let s = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    if !s.len().is_multiple_of(2) {
        return Err(ParseHexError::OddLength);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let digits: Vec<char> = s.chars().collect();
    for (i, pair) in digits.chunks(2).enumerate() {
        let hi = pair[0].to_digit(16).ok_or(ParseHexError::InvalidChar {
            char: pair[0],
            index: 2 * i,
        })?;
        let lo = pair[1].to_digit(16).ok_or(ParseHexError::InvalidChar {
            char: pair[1],
            index: 2 * i + 1,
        })?;
        out.push((hi as u8) << 4 | lo as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_hex(&encode_hex(&data)).unwrap(), data);
    }

    #[test]
    fn prefix_and_case_insensitive() {
        assert_eq!(decode_hex("0xABCD").unwrap(), vec![0xab, 0xcd]);
        assert_eq!(decode_hex("abcd").unwrap(), vec![0xab, 0xcd]);
        assert_eq!(decode_hex("0X01").unwrap(), vec![1]);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode_hex("abc"), Err(ParseHexError::OddLength));
        assert!(matches!(
            decode_hex("zz"),
            Err(ParseHexError::InvalidChar {
                char: 'z',
                index: 0
            })
        ));
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(encode_hex([]), "");
        assert_eq!(encode_hex_prefixed([]), "0x");
    }
}
