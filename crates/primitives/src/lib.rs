//! Core Ethereum primitives for the Proxion proxy-contract analyzer.
//!
//! This crate is self-contained: the 256-bit word type ([`U256`]), the
//! [`Keccak-256`](keccak256) hash, hex codecs and the deterministic RNG are
//! all implemented from scratch so that the rest of the workspace has no
//! dependency on external big-integer or hashing crates.
//!
//! # Examples
//!
//! ```
//! use proxion_primitives::{keccak256, selector, Address, U256};
//!
//! // The 4-byte function selector of the ERC-20 transfer function.
//! assert_eq!(selector("transfer(address,uint256)"), [0xa9, 0x05, 0x9c, 0xbb]);
//!
//! let a = U256::from(7u64);
//! let b = U256::from(6u64);
//! assert_eq!(a * b, U256::from(42u64));
//!
//! let addr = Address::from_low_u64(0xbeef);
//! assert_eq!(U256::from(addr).low_u64(), 0xbeef);
//! ```

#![deny(missing_docs)]

mod address;
mod hex;
mod keccak;
mod rlp;
mod rng;
mod u256;

pub use address::Address;
pub use hex::{decode_hex, encode_hex, encode_hex_prefixed, ParseHexError};
pub use keccak::{keccak256, selector, Keccak256, B256};
pub use rlp::{rlp_encode_bytes, rlp_encode_list, rlp_encode_u64};
pub use rng::DetRng;
pub use u256::{ParseU256Error, Sign, U256};
