//! A 256-bit unsigned integer with the exact wrapping semantics of EVM words.
//!
//! The representation is four little-endian `u64` limbs. All arithmetic
//! operators wrap modulo 2^256, matching `ADD`/`MUL`/`SUB` on the EVM; the
//! division and modulo operators return zero for a zero divisor, matching
//! `DIV`/`MOD`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, MulAssign, Neg, Not, Rem, Shl, Shr, Sub,
    SubAssign,
};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Sign of a 256-bit word under two's-complement interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// The most significant bit is clear.
    NonNegative,
    /// The most significant bit is set.
    Negative,
}

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseU256Error {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in string"),
            ParseErrorKind::Overflow => write!(f, "number too large to fit in 256 bits"),
        }
    }
}

impl std::error::Error for ParseU256Error {}

/// A 256-bit unsigned integer — the native word of the EVM.
///
/// # Examples
///
/// ```
/// use proxion_primitives::U256;
///
/// let x: U256 = "0xff".parse()?;
/// assert_eq!(x + U256::ONE, U256::from(256u64));
/// # Ok::<(), proxion_primitives::ParseU256Error>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256([u64; 4]);

// Serialized as a `0x…` hex string so JSON output reads like Ethereum
// tooling expects, rather than as raw limbs.
impl Serialize for U256 {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&format!("{self:#x}"))
    }
}

impl<'de> Deserialize<'de> for U256 {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);
    /// Number of bits in the word.
    pub const BITS: u32 = 256;

    /// Creates a value from little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    #[inline]
    pub const fn into_limbs(self) -> [u64; 4] {
        self.0
    }

    /// Creates a value from a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - 8 * (i + 1);
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[start..start + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Creates a value from up to 32 big-endian bytes, zero-extending on the
    /// left. This matches how the EVM loads `PUSH1..PUSH32` immediates and
    /// call-data words.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than 32 bytes.
    pub fn from_be_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "slice longer than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        Self::from_be_bytes(buf)
    }

    /// Returns the value as a big-endian 32-byte array.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            let start = 32 - 8 * (i + 1);
            out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns the low 64 bits, discarding the rest.
    #[inline]
    pub const fn low_u64(self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits, discarding the rest.
    #[inline]
    pub const fn low_u128(self) -> u128 {
        (self.0[1] as u128) << 64 | self.0[0] as u128
    }

    /// Converts to `u64` if the value fits.
    pub fn try_into_u64(self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `usize` if the value fits.
    pub fn try_into_usize(self) -> Option<usize> {
        self.try_into_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Number of bits required to represent the value (`0` for zero).
    pub fn bit_len(self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * (i as u32 + 1) - self.0[i].leading_zeros();
            }
        }
        0
    }

    /// Number of leading zero bits.
    pub fn leading_zeros(self) -> u32 {
        256 - self.bit_len()
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        self.0[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Returns the byte at big-endian index `i` (index 0 is the most
    /// significant byte), as used by the EVM `BYTE` opcode.
    pub fn byte_be(self, i: usize) -> u8 {
        if i >= 32 {
            return 0;
        }
        self.to_be_bytes()[i]
    }

    /// The sign of the value under two's-complement interpretation.
    pub fn sign(self) -> Sign {
        if self.0[3] >> 63 == 1 {
            Sign::Negative
        } else {
            Sign::NonNegative
        }
    }

    /// Wrapping addition, returning the carry flag as well.
    #[allow(clippy::needless_range_loop)] // limb-parallel carry chain reads clearest indexed
    pub fn overflowing_add(self, rhs: Self) -> (Self, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction, returning the borrow flag as well.
    #[allow(clippy::needless_range_loop)] // limb-parallel borrow chain reads clearest indexed
    pub fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping addition modulo 2^256.
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction modulo 2^256.
    #[inline]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction: `None` on underflow.
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 256×256 → 512-bit multiplication, returned as (low, high).
    pub fn widening_mul(self, rhs: Self) -> (Self, Self) {
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = prod[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                prod[i + j] = cur as u64;
                carry = cur >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        (
            U256([prod[0], prod[1], prod[2], prod[3]]),
            U256([prod[4], prod[5], prod[6], prod[7]]),
        )
    }

    /// Wrapping multiplication modulo 2^256.
    #[inline]
    pub fn wrapping_mul(self, rhs: Self) -> Self {
        self.widening_mul(rhs).0
    }

    /// Checked multiplication: `None` on overflow.
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        match self.widening_mul(rhs) {
            (lo, hi) if hi.is_zero() => Some(lo),
            _ => None,
        }
    }

    /// Simultaneous quotient and remainder. Returns `(0, 0)` when dividing
    /// by zero, matching the EVM's `DIV`/`MOD` semantics.
    pub fn div_rem(self, rhs: Self) -> (Self, Self) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        // Fast path: both operands fit in one limb.
        if self.bit_len() <= 64 {
            let (q, r) = (self.0[0] / rhs.0[0], self.0[0] % rhs.0[0]);
            return (U256::from(q), U256::from(r));
        }
        // Fast path: single-limb divisor — schoolbook division by u64.
        if rhs.bit_len() <= 64 {
            let d = rhs.0[0];
            let mut q = [0u64; 4];
            let mut rem = 0u128;
            for i in (0..4).rev() {
                let cur = rem << 64 | self.0[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            return (U256(q), U256::from(rem as u64));
        }
        // General case: binary long division.
        let shift = rhs.leading_zeros() - self.leading_zeros();
        let mut divisor = rhs << shift;
        let mut quotient = U256::ZERO;
        let mut remainder = self;
        for i in (0..=shift).rev() {
            if remainder >= divisor {
                remainder = remainder.wrapping_sub(divisor);
                quotient.0[(i / 64) as usize] |= 1u64 << (i % 64);
            }
            divisor = divisor >> 1u32;
        }
        (quotient, remainder)
    }

    /// Signed division with EVM `SDIV` semantics (truncated toward zero;
    /// `x / 0 == 0`; `MIN / -1 == MIN`).
    pub fn sdiv(self, rhs: Self) -> Self {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let min = U256::ONE << 255u32;
        if self == min && rhs == U256::MAX {
            return min;
        }
        let (sa, sb) = (self.sign(), rhs.sign());
        let a = if sa == Sign::Negative { -self } else { self };
        let b = if sb == Sign::Negative { -rhs } else { rhs };
        let q = a / b;
        if sa != sb {
            -q
        } else {
            q
        }
    }

    /// Signed modulo with EVM `SMOD` semantics (result has the dividend's
    /// sign; `x % 0 == 0`).
    pub fn smod(self, rhs: Self) -> Self {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let sa = self.sign();
        let a = if sa == Sign::Negative { -self } else { self };
        let b = if rhs.sign() == Sign::Negative {
            -rhs
        } else {
            rhs
        };
        let r = a % b;
        if sa == Sign::Negative {
            -r
        } else {
            r
        }
    }

    /// `(self + rhs) % modulus` computed without intermediate overflow
    /// (EVM `ADDMOD`).
    pub fn addmod(self, rhs: Self, modulus: Self) -> Self {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let (sum, carry) = self.overflowing_add(rhs);
        if !carry {
            return sum % modulus;
        }
        // 257-bit sum: reduce via 512-bit remainder with high word = 1.
        rem512(
            [sum.0[0], sum.0[1], sum.0[2], sum.0[3], 1, 0, 0, 0],
            modulus,
        )
    }

    /// `(self * rhs) % modulus` computed over the full 512-bit product
    /// (EVM `MULMOD`).
    pub fn mulmod(self, rhs: Self, modulus: Self) -> Self {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let (lo, hi) = self.widening_mul(rhs);
        rem512(
            [
                lo.0[0], lo.0[1], lo.0[2], lo.0[3], hi.0[0], hi.0[1], hi.0[2], hi.0[3],
            ],
            modulus,
        )
    }

    /// Wrapping exponentiation by squaring (EVM `EXP`).
    pub fn wrapping_pow(self, mut exp: Self) -> Self {
        let mut base = self;
        let mut acc = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                acc = acc.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            exp = exp >> 1u32;
        }
        acc
    }

    /// Sign-extends from byte `b` (EVM `SIGNEXTEND`): the byte at index `b`
    /// counted from the least significant end becomes the sign byte.
    pub fn signextend(self, b: Self) -> Self {
        let Some(b) = b.try_into_u64() else {
            return self;
        };
        if b >= 31 {
            return self;
        }
        let bit = (b as u32) * 8 + 7;
        let mask = (U256::ONE << (bit + 1)).wrapping_sub(U256::ONE);
        if self.bit(bit) {
            self | !mask
        } else {
            self & mask
        }
    }

    /// Signed less-than comparison (EVM `SLT`).
    pub fn slt(self, rhs: Self) -> bool {
        match (self.sign(), rhs.sign()) {
            (Sign::Negative, Sign::NonNegative) => true,
            (Sign::NonNegative, Sign::Negative) => false,
            _ => self < rhs,
        }
    }

    /// Signed greater-than comparison (EVM `SGT`).
    pub fn sgt(self, rhs: Self) -> bool {
        rhs.slt(self)
    }

    /// Arithmetic (sign-preserving) right shift (EVM `SAR`).
    pub fn sar(self, shift: Self) -> Self {
        let negative = self.sign() == Sign::Negative;
        let Some(s) = shift.try_into_u64().filter(|&s| s < 256) else {
            return if negative { U256::MAX } else { U256::ZERO };
        };
        let shifted = self >> s as u32;
        if negative && s > 0 {
            shifted | (U256::MAX << (256 - s as u32))
        } else {
            shifted
        }
    }

    /// Parses from a decimal string.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = U256::ZERO;
        let ten = U256::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseU256Error {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc
                .checked_mul(ten)
                .and_then(|v| v.checked_add(U256::from(d as u64)))
                .ok_or(ParseU256Error {
                    kind: ParseErrorKind::Overflow,
                })?;
        }
        Ok(acc)
    }

    /// Parses from a hexadecimal string, with or without a `0x` prefix.
    pub fn from_hex_str(s: &str) -> Result<Self, ParseU256Error> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        if s.is_empty() {
            return Err(ParseU256Error {
                kind: ParseErrorKind::Empty,
            });
        }
        if s.len() > 64 {
            return Err(ParseU256Error {
                kind: ParseErrorKind::Overflow,
            });
        }
        let mut acc = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseU256Error {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = (acc << 4u32) | U256::from(d as u64);
        }
        Ok(acc)
    }
}

/// Remainder of a 512-bit little-endian value modulo a non-zero 256-bit
/// modulus, via binary long division over the 512-bit value.
fn rem512(value: [u64; 8], modulus: U256) -> U256 {
    debug_assert!(!modulus.is_zero());
    let mut rem = U256::ZERO;
    let mut started = false;
    for i in (0..512).rev() {
        let bit = value[i / 64] >> (i % 64) & 1;
        if !started && bit == 0 {
            continue;
        }
        started = true;
        // rem = rem * 2 + bit, then conditionally subtract modulus.
        // rem < modulus <= 2^256-1 so rem*2+1 fits in 257 bits; handle the
        // possible carry-out explicitly.
        let (shifted, carry) = rem.overflowing_add(rem);
        let (shifted, carry2) = shifted.overflowing_add(U256::from(bit));
        rem = shifted;
        if carry || carry2 || rem >= modulus {
            rem = rem.wrapping_sub(modulus);
        }
    }
    rem
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from(v as u64)
    }
}

impl From<u8> for U256 {
    fn from(v: u8) -> Self {
        U256::from(v as u64)
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256::from(v as u64)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }
}

impl From<bool> for U256 {
    fn from(v: bool) -> Self {
        if v {
            U256::ONE
        } else {
            U256::ZERO
        }
    }
}

impl FromStr for U256 {
    type Err = ParseU256Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("0x") || s.starts_with("0X") {
            Self::from_hex_str(s)
        } else {
            Self::from_dec_str(s)
        }
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }
}

impl MulAssign for U256 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: Self) -> Self {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: Self) -> Self {
        self.div_rem(rhs).1
    }
}

impl Neg for U256 {
    type Output = U256;
    /// Two's-complement negation modulo 2^256.
    fn neg(self) -> Self {
        U256::ZERO.wrapping_sub(self)
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> Self {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: Self) -> Self {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: Self) -> Self {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: Self) -> Self {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> Self {
        if shift >= 256 {
            return U256::ZERO;
        }
        let (limbs, bits) = ((shift / 64) as usize, shift % 64);
        let mut out = [0u64; 4];
        for i in (limbs..4).rev() {
            out[i] = self.0[i - limbs] << bits;
            if bits > 0 && i > limbs {
                out[i] |= self.0[i - limbs - 1] >> (64 - bits);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    #[allow(clippy::needless_range_loop)] // cross-limb shift indexes two offsets at once
    fn shr(self, shift: u32) -> Self {
        if shift >= 256 {
            return U256::ZERO;
        }
        let (limbs, bits) = ((shift / 64) as usize, shift % 64);
        let mut out = [0u64; 4];
        for i in 0..4 - limbs {
            out[i] = self.0[i + limbs] >> bits;
            if bits > 0 && i + limbs + 1 < 4 {
                out[i] |= self.0[i + limbs + 1] << (64 - bits);
            }
        }
        U256(out)
    }
}

impl Shl<U256> for U256 {
    type Output = U256;
    /// EVM `SHL`: shifts ≥ 256 produce zero.
    fn shl(self, shift: U256) -> Self {
        match shift.try_into_u64() {
            Some(s) if s < 256 => self << s as u32,
            _ => U256::ZERO,
        }
    }
}

impl Shr<U256> for U256 {
    type Output = U256;
    /// EVM `SHR`: shifts ≥ 256 produce zero.
    fn shr(self, shift: U256) -> Self {
        match shift.try_into_u64() {
            Some(s) if s < 256 => self >> s as u32,
            _ => U256::ZERO,
        }
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut v = *self;
        let ten = U256::from(10u64);
        while !v.is_zero() {
            let (q, r) = v.div_rem(ten);
            digits.push(b'0' + r.low_u64() as u8);
            v = q;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).expect("ASCII digits"))
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.to_be_bytes();
        let s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        let trimmed = s.trim_start_matches('0');
        let out = if trimmed.is_empty() { "0" } else { trimmed };
        if f.alternate() {
            write!(f, "0x{out}")
        } else {
            f.write_str(out)
        }
    }
}

impl fmt::UpperHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{self:x}");
        let upper = lower.to_uppercase();
        if f.alternate() {
            write!(f, "0x{upper}")
        } else {
            f.write_str(&upper)
        }
    }
}

impl fmt::Binary for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut started = false;
        for i in (0..256).rev() {
            let bit = self.bit(i);
            if bit {
                started = true;
            }
            if started {
                f.write_str(if bit { "1" } else { "0" })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256::from_limbs([u64::MAX, 0, 0, 0]);
        assert_eq!(a + U256::ONE, U256::from_limbs([0, 1, 0, 0]));
    }

    #[test]
    fn add_wraps_at_max() {
        assert_eq!(U256::MAX + U256::ONE, U256::ZERO);
        let (_, carry) = U256::MAX.overflowing_add(U256::ONE);
        assert!(carry);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(U256::ZERO - U256::ONE, U256::MAX);
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(
            u(1_000_000) * u(1_000_000),
            U256::from(1_000_000_000_000u64)
        );
        // (2^128) * (2^128) wraps to zero.
        let x = U256::ONE << 128u32;
        assert_eq!(x * x, U256::ZERO);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
        let y = x - U256::ONE;
        let expect = U256::ZERO - (U256::ONE << 129u32) + U256::ONE;
        assert_eq!(y * y, expect);
    }

    #[test]
    fn widening_mul_high_part() {
        let x = U256::ONE << 200u32;
        let (lo, hi) = x.widening_mul(x);
        assert_eq!(lo, U256::ZERO);
        assert_eq!(hi, U256::ONE << 144u32);
    }

    #[test]
    fn div_rem_basic() {
        assert_eq!(u(100) / u(7), u(14));
        assert_eq!(u(100) % u(7), u(2));
        assert_eq!(u(100) / U256::ZERO, U256::ZERO);
        assert_eq!(u(100) % U256::ZERO, U256::ZERO);
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = U256::from_hex_str(
            "0xdeadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff",
        )
        .unwrap();
        let b = U256::from_hex_str("0x1234567890abcdef").unwrap();
        let (q, r) = a.div_rem(b);
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn div_by_larger_is_zero() {
        assert_eq!(u(3) / u(5), U256::ZERO);
        assert_eq!(u(3) % u(5), u(3));
    }

    #[test]
    fn sdiv_truncates_toward_zero() {
        let neg7 = -u(7);
        assert_eq!(neg7.sdiv(u(2)), -u(3));
        assert_eq!(u(7).sdiv(-u(2)), -u(3));
        assert_eq!(neg7.sdiv(-u(2)), u(3));
    }

    #[test]
    fn sdiv_min_by_minus_one_is_min() {
        let min = U256::ONE << 255u32;
        assert_eq!(min.sdiv(U256::MAX), min);
    }

    #[test]
    fn smod_sign_follows_dividend() {
        assert_eq!((-u(7)).smod(u(3)), -u(1));
        assert_eq!(u(7).smod(-u(3)), u(1));
    }

    #[test]
    fn addmod_handles_carry() {
        // (MAX + MAX) % MAX == 0; (MAX + 2) % MAX == 2 % MAX... check vs spec:
        // (2^256-1 + 2) mod (2^256-1) = 2? (sum = 2^256+1 = (2^256-1) + 2 → rem 2).
        assert_eq!(U256::MAX.addmod(u(2), U256::MAX), u(2));
        assert_eq!(u(10).addmod(u(10), u(8)), u(4));
        assert_eq!(u(10).addmod(u(10), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn mulmod_full_width() {
        // (2^255 * 4) mod (2^256 - 1): 2^257 mod (2^256-1) = 2.
        let x = U256::ONE << 255u32;
        assert_eq!(x.mulmod(u(4), U256::MAX), u(2));
        assert_eq!(u(10).mulmod(u(10), u(7)), u(2));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        assert_eq!(u(3).wrapping_pow(u(5)), u(243));
        assert_eq!(u(2).wrapping_pow(u(256)), U256::ZERO);
        assert_eq!(u(0).wrapping_pow(U256::ZERO), U256::ONE);
    }

    #[test]
    fn signextend_matches_evm_examples() {
        // SIGNEXTEND(0, 0xff) = -1.
        assert_eq!(u(0xff).signextend(u(0)), U256::MAX);
        // SIGNEXTEND(0, 0x7f) = 0x7f.
        assert_eq!(u(0x7f).signextend(u(0)), u(0x7f));
        // byte index beyond 30 is identity.
        assert_eq!(u(0xff).signextend(u(31)), u(0xff));
        assert_eq!(u(0xff).signextend(U256::MAX), u(0xff));
    }

    #[test]
    fn shifts_basic_and_boundary() {
        assert_eq!(u(1) << 255u32 >> 255u32, u(1));
        assert_eq!(U256::ONE << 256u32, U256::ZERO >> 0u32);
        assert_eq!(u(0xf0) >> 4u32, u(0x0f));
        assert_eq!(U256::MAX << U256::from(256u64), U256::ZERO);
        assert_eq!(U256::MAX >> U256::MAX, U256::ZERO);
    }

    #[test]
    fn sar_preserves_sign() {
        let neg2 = -u(2);
        assert_eq!(neg2.sar(u(1)), -u(1));
        assert_eq!(neg2.sar(u(300)), U256::MAX);
        assert_eq!(u(16).sar(u(2)), u(4));
        assert_eq!(u(16).sar(u(300)), U256::ZERO);
    }

    #[test]
    fn slt_sgt_signed_ordering() {
        assert!((-u(1)).slt(u(0)));
        assert!(!u(0).slt(-u(1)));
        assert!(u(1).sgt(-u(1)));
        assert!((-u(1)).slt(-u(0)) == (-u(1)).slt(U256::ZERO));
    }

    #[test]
    fn byte_be_indexing() {
        let v = U256::from_hex_str("0x0102").unwrap();
        assert_eq!(v.byte_be(31), 0x02);
        assert_eq!(v.byte_be(30), 0x01);
        assert_eq!(v.byte_be(0), 0x00);
        assert_eq!(v.byte_be(32), 0x00);
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = U256::from_hex_str(
            "0x00112233445566778899aabbccddeeff0102030405060708090a0b0c0d0e0f10",
        )
        .unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
    }

    #[test]
    fn from_be_slice_zero_extends() {
        assert_eq!(U256::from_be_slice(&[0x12, 0x34]), u(0x1234));
        assert_eq!(U256::from_be_slice(&[]), U256::ZERO);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "0",
            "1",
            "42",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ] {
            let v: U256 = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("0xff".parse::<U256>().unwrap(), u(255));
        assert!("".parse::<U256>().is_err());
        assert!("0xzz".parse::<U256>().is_err());
        assert!("12a".parse::<U256>().is_err());
    }

    #[test]
    fn parse_overflow_rejected() {
        // 2^256 decimal.
        let too_big =
            "115792089237316195423570985008687907853269984665640564039457584007913129639936";
        assert!(U256::from_dec_str(too_big).is_err());
        assert!(U256::from_hex_str(&"f".repeat(65)).is_err());
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", u(255)), "ff");
        assert_eq!(format!("{:#x}", u(255)), "0xff");
        assert_eq!(format!("{:X}", u(255)), "FF");
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        assert_eq!(format!("{:b}", u(5)), "101");
    }

    #[test]
    fn ordering_across_limbs() {
        let big = U256::ONE << 200u32;
        let small = U256::MAX >> 100u32;
        assert!(big > u(1));
        assert!((small > big) == (small.cmp(&big) == Ordering::Greater));
        assert_eq!(u(5).cmp(&u(5)), Ordering::Equal);
    }

    #[test]
    fn bit_len_and_leading_zeros() {
        assert_eq!(U256::ZERO.bit_len(), 0);
        assert_eq!(U256::ONE.bit_len(), 1);
        assert_eq!(U256::MAX.bit_len(), 256);
        assert_eq!((U256::ONE << 64u32).bit_len(), 65);
        assert_eq!(U256::ONE.leading_zeros(), 255);
    }

    #[test]
    fn neg_is_twos_complement() {
        assert_eq!(-U256::ONE, U256::MAX);
        assert_eq!(-U256::ZERO, U256::ZERO);
        assert_eq!(-(-u(12345)), u(12345));
    }
}
