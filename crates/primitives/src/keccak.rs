//! Keccak-256 as used by Ethereum (the original Keccak padding, **not**
//! NIST SHA-3), implemented from scratch and validated against published
//! test vectors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hex::encode_hex;
use crate::U256;

/// A 32-byte hash digest.
///
/// # Examples
///
/// ```
/// use proxion_primitives::{keccak256, B256};
///
/// let h: B256 = keccak256(b"");
/// assert_eq!(
///     h.to_string(),
///     "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct B256(pub [u8; 32]);

// Serialized as the canonical `0x…` hex string.
impl Serialize for B256 {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&format!("0x{}", encode_hex(self.0)))
    }
}

impl<'de> Deserialize<'de> for B256 {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let bytes = crate::decode_hex(&s).map_err(serde::de::Error::custom)?;
        if bytes.len() != 32 {
            return Err(serde::de::Error::custom("expected 32 hex bytes"));
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(B256(out))
    }
}

impl B256 {
    /// The all-zero digest.
    pub const ZERO: B256 = B256([0; 32]);

    /// Returns the digest bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the digest as a big-endian 256-bit integer.
    pub fn to_u256(self) -> U256 {
        U256::from_be_bytes(self.0)
    }
}

impl From<[u8; 32]> for B256 {
    fn from(bytes: [u8; 32]) -> Self {
        B256(bytes)
    }
}

impl From<U256> for B256 {
    fn from(v: U256) -> Self {
        B256(v.to_be_bytes())
    }
}

impl AsRef<[u8]> for B256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for B256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B256(0x{})", encode_hex(self.0.as_slice()))
    }
}

impl fmt::Display for B256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", encode_hex(self.0.as_slice()))
    }
}

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets, indexed `[x][y]` per the Keccak reference.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

fn keccak_f1600(state: &mut [[u64; 5]; 5]) {
    for &rc in &RC {
        // θ step.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for (x, column) in state.iter_mut().enumerate() {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for lane in column.iter_mut() {
                *lane ^= d;
            }
        }
        // ρ and π steps.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(RHO[x][y]);
            }
        }
        // χ step.
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }
        // ι step.
        state[0][0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher.
///
/// # Examples
///
/// ```
/// use proxion_primitives::{keccak256, Keccak256};
///
/// let mut hasher = Keccak256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), keccak256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buffer: [u8; Self::RATE],
    buffered: usize,
}

impl Keccak256 {
    /// The sponge rate for a 256-bit capacity: 136 bytes.
    const RATE: usize = 136;

    /// Creates an empty hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0; 5]; 5],
            buffer: [0; Self::RATE],
            buffered: 0,
        }
    }

    /// Absorbs more input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (Self::RATE - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == Self::RATE {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..Self::RATE / 8 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&self.buffer[8 * i..8 * i + 8]);
            let lane = u64::from_le_bytes(chunk);
            self.state[i % 5][i / 5] ^= lane;
        }
        keccak_f1600(&mut self.state);
        self.buffered = 0;
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> B256 {
        // Original Keccak multi-rate padding: 0x01 ... 0x80.
        self.buffer[self.buffered..].fill(0);
        self.buffer[self.buffered] = 0x01;
        self.buffer[Self::RATE - 1] |= 0x80;
        self.buffered = Self::RATE;
        self.absorb_block();

        let mut out = [0u8; 32];
        for i in 0..4 {
            let lane = self.state[i % 5][i / 5];
            out[8 * i..8 * i + 8].copy_from_slice(&lane.to_le_bytes());
        }
        B256(out)
    }
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the Keccak-256 digest of `data` in one call.
///
/// # Examples
///
/// ```
/// use proxion_primitives::keccak256;
///
/// let digest = keccak256(b"abc");
/// assert_eq!(
///     digest.to_string(),
///     "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
/// );
/// ```
pub fn keccak256(data: impl AsRef<[u8]>) -> B256 {
    let mut hasher = Keccak256::new();
    hasher.update(data.as_ref());
    hasher.finalize()
}

/// Computes the 4-byte function selector for a canonical Solidity function
/// prototype, i.e. the first four bytes of `keccak256(prototype)`.
///
/// # Examples
///
/// ```
/// use proxion_primitives::selector;
///
/// assert_eq!(selector("transfer(address,uint256)"), [0xa9, 0x05, 0x9c, 0xbb]);
/// ```
pub fn selector(prototype: &str) -> [u8; 4] {
    let digest = keccak256(prototype.as_bytes());
    [digest.0[0], digest.0[1], digest.0[2], digest.0[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::encode_hex;

    fn hex_of(data: &[u8]) -> String {
        encode_hex(keccak256(data).as_bytes())
    }

    #[test]
    fn empty_input_vector() {
        assert_eq!(
            hex_of(b""),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex_of(b"abc"),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn long_input_crossing_rate_boundary() {
        // 200 'a' bytes spans more than one 136-byte block.
        let data = vec![b'a'; 200];
        // Cross-checked against an independent reference implementation.
        assert_eq!(
            hex_of(&data),
            "96ea54061def936c4be90b518992fdc6f12f535068a256229aca54267b4d084d"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = keccak256(&data);
        for chunk_size in [1usize, 7, 64, 135, 136, 137, 999] {
            let mut h = Keccak256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn known_ethereum_selectors() {
        assert_eq!(
            selector("transfer(address,uint256)"),
            [0xa9, 0x05, 0x9c, 0xbb]
        );
        assert_eq!(selector("balanceOf(address)"), [0x70, 0xa0, 0x82, 0x31]);
        assert_eq!(
            selector("approve(address,uint256)"),
            [0x09, 0x5e, 0xa7, 0xb3]
        );
        assert_eq!(selector("implementation()"), [0x5c, 0x60, 0xda, 0x1b]);
    }

    #[test]
    fn eip1967_implementation_slot() {
        // EIP-1967: keccak256("eip1967.proxy.implementation") - 1.
        let slot = keccak256(b"eip1967.proxy.implementation").to_u256() - U256::ONE;
        assert_eq!(
            format!("{slot:x}"),
            "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc"
        );
    }

    #[test]
    fn eip1822_proxiable_slot() {
        // EIP-1822: keccak256("PROXIABLE").
        let slot = keccak256(b"PROXIABLE").to_u256();
        assert_eq!(
            format!("{slot:x}"),
            "c5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7"
        );
    }

    #[test]
    fn b256_display_and_conversions() {
        let h = keccak256(b"x");
        assert!(h.to_string().starts_with("0x"));
        assert_eq!(B256::from(h.to_u256()), h);
        assert_eq!(B256::ZERO.as_bytes(), &[0u8; 32]);
    }
}
