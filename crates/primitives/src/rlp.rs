//! Minimal RLP (Recursive Length Prefix) encoding — enough for the
//! `CREATE` address derivation, which is the only place Ethereum's account
//! model needs it: `address = keccak256(rlp([sender, nonce]))[12..]`.

/// RLP-encodes a byte string.
///
/// # Examples
///
/// ```
/// use proxion_primitives::rlp_encode_bytes;
///
/// assert_eq!(rlp_encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
/// assert_eq!(rlp_encode_bytes(&[]), vec![0x80]);
/// assert_eq!(rlp_encode_bytes(&[0x7f]), vec![0x7f]);
/// ```
pub fn rlp_encode_bytes(data: &[u8]) -> Vec<u8> {
    match data {
        // A single byte below 0x80 is its own encoding.
        [b] if *b < 0x80 => vec![*b],
        _ if data.len() <= 55 => {
            let mut out = Vec::with_capacity(1 + data.len());
            out.push(0x80 + data.len() as u8);
            out.extend_from_slice(data);
            out
        }
        _ => {
            let len_bytes = minimal_be(data.len() as u64);
            let mut out = Vec::with_capacity(1 + len_bytes.len() + data.len());
            out.push(0xb7 + len_bytes.len() as u8);
            out.extend_from_slice(&len_bytes);
            out.extend_from_slice(data);
            out
        }
    }
}

/// RLP-encodes an unsigned integer (minimal big-endian, zero is the empty
/// string).
///
/// # Examples
///
/// ```
/// use proxion_primitives::rlp_encode_u64;
///
/// assert_eq!(rlp_encode_u64(0), vec![0x80]);
/// assert_eq!(rlp_encode_u64(15), vec![0x0f]);
/// assert_eq!(rlp_encode_u64(1024), vec![0x82, 0x04, 0x00]);
/// ```
pub fn rlp_encode_u64(value: u64) -> Vec<u8> {
    rlp_encode_bytes(&minimal_be(value))
}

/// RLP-encodes a list from already-encoded items.
///
/// # Examples
///
/// ```
/// use proxion_primitives::{rlp_encode_bytes, rlp_encode_list};
///
/// // [ "cat", "dog" ]
/// let encoded = rlp_encode_list(&[rlp_encode_bytes(b"cat"), rlp_encode_bytes(b"dog")]);
/// assert_eq!(encoded[0], 0xc8);
/// ```
pub fn rlp_encode_list(items: &[Vec<u8>]) -> Vec<u8> {
    let payload_len: usize = items.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(1 + 8 + payload_len);
    if payload_len <= 55 {
        out.push(0xc0 + payload_len as u8);
    } else {
        let len_bytes = minimal_be(payload_len as u64);
        out.push(0xf7 + len_bytes.len() as u8);
        out.extend_from_slice(&len_bytes);
    }
    for item in items {
        out.extend_from_slice(item);
    }
    out
}

/// Minimal big-endian representation (empty for zero).
fn minimal_be(value: u64) -> Vec<u8> {
    if value == 0 {
        return Vec::new();
    }
    let bytes = value.to_be_bytes();
    let first = bytes.iter().position(|&b| b != 0).unwrap_or(8);
    bytes[first..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors() {
        // From the Ethereum wiki RLP test vectors.
        assert_eq!(rlp_encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
        assert_eq!(rlp_encode_bytes(&[]), vec![0x80]);
        assert_eq!(rlp_encode_bytes(&[0x00]), vec![0x00]);
        assert_eq!(rlp_encode_bytes(&[0x0f]), vec![0x0f]);
        assert_eq!(rlp_encode_bytes(&[0x04, 0x00]), vec![0x82, 0x04, 0x00]);
        let lorem = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        let encoded = rlp_encode_bytes(lorem);
        assert_eq!(encoded[0], 0xb8);
        assert_eq!(encoded[1], lorem.len() as u8);
        assert_eq!(&encoded[2..], lorem);
    }

    #[test]
    fn integer_vectors() {
        assert_eq!(rlp_encode_u64(0), vec![0x80]);
        assert_eq!(rlp_encode_u64(1), vec![0x01]);
        assert_eq!(rlp_encode_u64(16), vec![0x10]);
        assert_eq!(rlp_encode_u64(79), vec![0x4f]);
        assert_eq!(rlp_encode_u64(127), vec![0x7f]);
        assert_eq!(rlp_encode_u64(128), vec![0x81, 0x80]);
        assert_eq!(rlp_encode_u64(1000), vec![0x82, 0x03, 0xe8]);
        assert_eq!(
            rlp_encode_u64(0xffff_ffff),
            vec![0x84, 0xff, 0xff, 0xff, 0xff]
        );
    }

    #[test]
    fn list_vectors() {
        // [] -> 0xc0
        assert_eq!(rlp_encode_list(&[]), vec![0xc0]);
        // ["cat","dog"] -> 0xc8 0x83 'c' 'a' 't' 0x83 'd' 'o' 'g'
        let encoded = rlp_encode_list(&[rlp_encode_bytes(b"cat"), rlp_encode_bytes(b"dog")]);
        assert_eq!(
            encoded,
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
    }

    #[test]
    fn long_list_header() {
        let items: Vec<Vec<u8>> = (0..20).map(|_| rlp_encode_bytes(b"abc")).collect();
        let encoded = rlp_encode_list(&items);
        // 20 * 4 = 80 bytes payload > 55 → long form.
        assert_eq!(encoded[0], 0xf8);
        assert_eq!(encoded[1], 80);
    }
}
