//! 20-byte Ethereum account addresses.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::hex::{decode_hex, encode_hex, ParseHexError};
use crate::keccak::keccak256;
use crate::U256;

/// A 20-byte Ethereum address.
///
/// # Examples
///
/// ```
/// use proxion_primitives::Address;
///
/// let usdt: Address = "0xdAC17F958D2ee523a2206206994597C13D831ec7".parse()?;
/// assert_eq!(usdt.as_bytes()[0], 0xda);
/// # Ok::<(), proxion_primitives::ParseHexError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Address(pub [u8; 20]);

// Serialized as the canonical `0x…` hex string.
impl Serialize for Address {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&format!("0x{}", encode_hex(self.0)))
    }
}

impl<'de> Deserialize<'de> for Address {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

impl Address {
    /// The zero address.
    pub const ZERO: Address = Address([0; 20]);

    /// Returns the raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Returns `true` if this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 20]
    }

    /// Builds an address whose low 8 bytes are `v` (test helper; mirrors
    /// `Address::from_low_u64_be` in common Ethereum libraries).
    pub fn from_low_u64(v: u64) -> Self {
        let mut out = [0u8; 20];
        out[12..].copy_from_slice(&v.to_be_bytes());
        Address(out)
    }

    /// Truncates a 256-bit word to its low 20 bytes, as the EVM does when an
    /// address is popped from the stack.
    pub fn from_word(word: U256) -> Self {
        let bytes = word.to_be_bytes();
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes[12..]);
        Address(out)
    }

    /// The address a `CREATE` at `nonce` from `self` deploys to, exactly
    /// per the yellow paper: `keccak256(rlp([sender, nonce]))[12..]`.
    pub fn create_address(&self, nonce: u64) -> Address {
        let encoded = crate::rlp_encode_list(&[
            crate::rlp_encode_bytes(&self.0),
            crate::rlp_encode_u64(nonce),
        ]);
        Address::from_word(keccak256(encoded).to_u256())
    }

    /// The address a `CREATE2` deploys to:
    /// `keccak256(0xff ‖ deployer ‖ salt ‖ keccak256(init_code))[12..]`,
    /// exactly per EIP-1014.
    pub fn create2_address(&self, salt: U256, init_code_hash: crate::B256) -> Address {
        let mut buf = [0u8; 85];
        buf[0] = 0xff;
        buf[1..21].copy_from_slice(&self.0);
        buf[21..53].copy_from_slice(&salt.to_be_bytes());
        buf[53..85].copy_from_slice(init_code_hash.as_bytes());
        Address::from_word(keccak256(buf).to_u256())
    }
}

impl From<[u8; 20]> for Address {
    fn from(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }
}

impl From<Address> for U256 {
    fn from(a: Address) -> Self {
        U256::from_be_slice(&a.0)
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl FromStr for Address {
    type Err = ParseHexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = decode_hex(s)?;
        if bytes.len() != 20 {
            return Err(ParseHexError::BadLength {
                expected: 40,
                found: bytes.len() * 2,
            });
        }
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes);
        Ok(Address(out))
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address(0x{})", encode_hex(self.0.as_slice()))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", encode_hex(self.0.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let s = "0xdac17f958d2ee523a2206206994597c13d831ec7";
        let a: Address = s.parse().unwrap();
        assert_eq!(a.to_string(), s);
    }

    #[test]
    fn parse_rejects_wrong_length() {
        assert!("0x1234".parse::<Address>().is_err());
        assert!("0xzz".repeat(20).parse::<Address>().is_err());
    }

    #[test]
    fn word_round_trip_truncates_high_bytes() {
        let w = U256::MAX;
        let a = Address::from_word(w);
        assert_eq!(a.0, [0xff; 20]);
        assert_eq!(U256::from(a), U256::MAX >> 96u32);
    }

    #[test]
    fn create_address_matches_mainnet_vector() {
        // The canonical worked example: sender
        // 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0 at nonce 0 deploys to
        // 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d.
        let sender: Address = "0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0"
            .parse()
            .unwrap();
        assert_eq!(
            sender.create_address(0).to_string(),
            "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d"
        );
        // Nonce 1 differs (and uses the single-byte integer encoding).
        assert_ne!(sender.create_address(1), sender.create_address(0));
    }

    #[test]
    fn create_addresses_are_deterministic_and_distinct() {
        let d = Address::from_low_u64(7);
        let a1 = d.create_address(0);
        let a2 = d.create_address(1);
        assert_ne!(a1, a2);
        assert_eq!(a1, d.create_address(0));
        assert!(!a1.is_zero());
    }

    #[test]
    fn create2_follows_eip1014_shape() {
        let d = Address::from_low_u64(1);
        let h = keccak256(b"init code");
        let a1 = d.create2_address(U256::from(1u64), h);
        let a2 = d.create2_address(U256::from(2u64), h);
        assert_ne!(a1, a2);
        assert_eq!(a1, d.create2_address(U256::from(1u64), h));
    }

    #[test]
    fn zero_address() {
        assert!(Address::ZERO.is_zero());
        assert!(!Address::from_low_u64(1).is_zero());
        assert_eq!(Address::default(), Address::ZERO);
    }
}
