//! Property-based tests for the arithmetic and codec primitives.

use proptest::prelude::*;
use proxion_primitives::{decode_hex, encode_hex, keccak256, Keccak256, U256};

fn u256() -> impl Strategy<Value = U256> {
    any::<[u8; 32]>().prop_map(U256::from_be_bytes)
}

/// A 256-bit value that is often small (exercises limb boundaries).
fn u256_mixed() -> impl Strategy<Value = U256> {
    prop_oneof![
        any::<u64>().prop_map(U256::from),
        any::<u128>().prop_map(U256::from),
        u256(),
        Just(U256::ZERO),
        Just(U256::ONE),
        Just(U256::MAX),
    ]
}

proptest! {
    #[test]
    fn add_commutative(a in u256_mixed(), b in u256_mixed()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in u256_mixed(), b in u256_mixed(), c in u256_mixed()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in u256_mixed(), b in u256_mixed()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_distributes_over_add(a in u256_mixed(), b in u256_mixed(), c in u256_mixed()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_inverts_add(a in u256_mixed(), b in u256_mixed()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn neg_is_additive_inverse(a in u256_mixed()) {
        prop_assert_eq!(a + (-a), U256::ZERO);
    }

    #[test]
    fn div_rem_reconstructs(a in u256_mixed(), b in u256_mixed()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q * b + r, a);
        // No overflow in q*b since q*b <= a.
        prop_assert!(q.checked_mul(b).is_some());
    }

    #[test]
    fn division_by_zero_is_zero(a in u256_mixed()) {
        prop_assert_eq!(a / U256::ZERO, U256::ZERO);
        prop_assert_eq!(a % U256::ZERO, U256::ZERO);
    }

    #[test]
    fn widening_mul_consistent_with_mulmod(a in u256_mixed(), b in u256_mixed(), m in u256_mixed()) {
        prop_assume!(!m.is_zero());
        // mulmod computed through the 512-bit product must match
        // iterated addition modulo m on small operands.
        let expected = {
            // (a mod m) * (b mod m) mod m via repeated doubling.
            let mut acc = U256::ZERO;
            let mut base = a % m;
            let mut exp = b;
            while !exp.is_zero() {
                if exp.bit(0) {
                    acc = acc.addmod(base, m);
                }
                base = base.addmod(base, m);
                exp = exp >> 1u32;
            }
            acc
        };
        prop_assert_eq!(a.mulmod(b, m), expected);
    }

    #[test]
    fn shifts_compose(a in u256_mixed(), s1 in 0u32..128, s2 in 0u32..128) {
        prop_assert_eq!((a << s1) << s2, a << (s1 + s2));
        prop_assert_eq!((a >> s1) >> s2, a >> (s1 + s2));
    }

    #[test]
    fn shl_shr_roundtrip_preserves_low_bits(a in u256_mixed(), s in 0u32..256) {
        let masked = if s == 0 { a } else { a & (U256::MAX >> s) };
        prop_assert_eq!((a << s) >> s, masked);
    }

    #[test]
    fn bitops_involutions(a in u256_mixed(), b in u256_mixed()) {
        prop_assert_eq!(!!a, a);
        prop_assert_eq!((a ^ b) ^ b, a);
        prop_assert_eq!(a & a, a);
        prop_assert_eq!(a | a, a);
    }

    #[test]
    fn byte_be_matches_to_be_bytes(a in u256_mixed(), i in 0usize..32) {
        prop_assert_eq!(a.byte_be(i), a.to_be_bytes()[i]);
    }

    #[test]
    fn ordering_consistent_with_sub(a in u256_mixed(), b in u256_mixed()) {
        let (_, borrow) = a.overflowing_sub(b);
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn decimal_parse_roundtrip(a in u256_mixed()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<U256>().unwrap(), a);
    }

    #[test]
    fn hex_parse_roundtrip(a in u256_mixed()) {
        let s = format!("{a:#x}");
        prop_assert_eq!(s.parse::<U256>().unwrap(), a);
    }

    #[test]
    fn be_bytes_roundtrip(bytes in any::<[u8; 32]>()) {
        prop_assert_eq!(U256::from_be_bytes(bytes).to_be_bytes(), bytes);
    }

    #[test]
    fn signextend_is_idempotent(a in u256_mixed(), b in 0u64..32) {
        let once = a.signextend(U256::from(b));
        prop_assert_eq!(once.signextend(U256::from(b)), once);
    }

    #[test]
    fn sar_matches_shr_for_nonnegative(a in u256_mixed(), s in 0u64..256) {
        let nonneg = a >> 1u32; // clear the sign bit
        prop_assert_eq!(nonneg.sar(U256::from(s)), nonneg >> U256::from(s));
    }

    #[test]
    fn sdiv_smod_reconstruct(a in u256_mixed(), b in u256_mixed()) {
        prop_assume!(!b.is_zero());
        // a == sdiv(a,b)*b + smod(a,b) in wrapping arithmetic.
        let q = a.sdiv(b);
        let r = a.smod(b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn hex_codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let encoded = encode_hex(&data);
        prop_assert_eq!(decode_hex(&encoded).unwrap(), data);
    }

    #[test]
    fn keccak_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..500), split in 0usize..500) {
        let split = split.min(data.len());
        let mut h = Keccak256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn keccak_injective_on_samples(a in proptest::collection::vec(any::<u8>(), 0..64),
                                   b in proptest::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(keccak256(&a), keccak256(&b));
        }
    }

    #[test]
    fn exp_matches_repeated_mul(base in u256_mixed(), e in 0u64..32) {
        let mut expected = U256::ONE;
        for _ in 0..e {
            expected = expected.wrapping_mul(base);
        }
        prop_assert_eq!(base.wrapping_pow(U256::from(e)), expected);
    }
}
