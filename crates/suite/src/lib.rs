//! Re-exports every Proxion crate for the integration tests and examples.
pub use proxion_baselines as baselines;
pub use proxion_chain as chain;
pub use proxion_core as core;
pub use proxion_dataset as dataset;
pub use proxion_disasm as disasm;
pub use proxion_etherscan as etherscan;
pub use proxion_evm as evm;
pub use proxion_primitives as primitives;
pub use proxion_solc as solc;
