//! Differential property suite for checkpointed probe sessions.
//!
//! A [`ProbeSession`] must be *observationally identical* to fresh
//! per-probe execution: same [`CallResult`]s, same write-sets, same
//! delegate observations, and the same accumulated
//! [`ProfilingInspector`] profile — over the dataset generator's whole
//! bytecode population, exploit corpus included. Any divergence means a
//! probe leaked state (or a warm allocation leaked behavior) across the
//! checkpoint rollback.

use std::sync::Arc;

use proptest::prelude::*;
use proxion_chain::{Chain, SourceHost};
use proxion_dataset::{ExploitCorpus, Landscape, LandscapeConfig};
use proxion_evm::{CallResult, Evm, Message, ProbeSession, ProfilingInspector, RecordingInspector};
use proxion_primitives::{selector, Address, U256};
use proxion_telemetry::Telemetry;

/// One probe's full observable surface: the call result plus everything
/// a recording inspector saw.
#[derive(Debug, PartialEq)]
struct Observation {
    success: bool,
    output: Vec<u8>,
    gas_used: u64,
    writes: Vec<(Address, U256, U256)>,
    accesses: usize,
    delegates: Vec<(usize, Address, Address, Vec<u8>)>,
}

fn observation(result: CallResult, recorder: &RecordingInspector) -> Observation {
    Observation {
        success: result.is_success(),
        output: result.output,
        gas_used: result.gas_used,
        writes: recorder
            .storage
            .iter()
            .filter(|a| a.is_write)
            .map(|a| (a.address, a.slot, a.value))
            .collect(),
        accesses: recorder.storage.len(),
        delegates: recorder
            .delegate_calls()
            .map(|d| (d.depth, d.proxy, d.logic, d.forwarded_input.clone()))
            .collect(),
    }
}

/// The profile a [`Telemetry`] accumulated, flattened for comparison.
#[derive(Debug, PartialEq)]
struct Profile {
    total_ops: u64,
    opcodes: Vec<(u8, u64, u64)>,
    depths: Vec<u64>,
}

fn profile_of(telemetry: &Telemetry) -> Profile {
    Profile {
        total_ops: telemetry.evm().total_ops(),
        opcodes: telemetry
            .evm()
            .opcode_stats()
            .iter()
            .map(|s| (s.op, s.count, s.gas))
            .collect(),
        depths: telemetry.evm().depth_histogram().to_vec(),
    }
}

/// A deterministic calldata set per probe seed: `initialize()`-family
/// calls (state-changing on capturable proxies), the unmatched fallback
/// probe, and two seed-derived selectors with argument padding.
fn probe_inputs(seed: u64) -> Vec<Vec<u8>> {
    let bytes = seed.to_be_bytes();
    let mut crafted_a = vec![bytes[0], bytes[1], bytes[2], bytes[3]];
    crafted_a.extend_from_slice(&[0x11; 32]);
    let mut crafted_b = vec![bytes[4], bytes[5], bytes[6], bytes[7]];
    crafted_b.extend_from_slice(&bytes);
    vec![
        selector("initialize()").to_vec(),
        selector("initialize(address)")
            .iter()
            .copied()
            .chain([0u8; 32])
            .collect(),
        vec![0xff, 0xff, 0xff, 0xff],
        crafted_a,
        crafted_b,
    ]
}

fn caller() -> Address {
    Address::from_low_u64(0xd1ff_5eed)
}

/// Runs every (target × input) probe through ONE warm session.
fn run_batched(
    chain: &Chain,
    targets: &[Address],
    inputs: &[Vec<u8>],
) -> (Vec<Observation>, Profile) {
    let telemetry = Arc::new(Telemetry::default());
    let env = chain.env();
    let mut fork = SourceHost::new(chain);
    let mut session = ProbeSession::new(&mut fork, env);
    let mut observed = Vec::new();
    for &target in targets {
        for input in inputs {
            let mut recorder = RecordingInspector::new();
            let result = {
                let mut both = (
                    &mut recorder,
                    ProfilingInspector::new(Arc::clone(&telemetry)),
                );
                session.run_probe_with(
                    Message::eoa_call(caller(), target, input.clone()),
                    &mut both,
                )
            };
            observed.push(observation(result, &recorder));
        }
    }
    drop(session);
    (observed, profile_of(&telemetry))
}

/// Runs the same probes, each on a brand-new host and interpreter.
fn run_fresh(
    chain: &Chain,
    targets: &[Address],
    inputs: &[Vec<u8>],
) -> (Vec<Observation>, Profile) {
    let telemetry = Arc::new(Telemetry::default());
    let mut observed = Vec::new();
    for &target in targets {
        for input in inputs {
            let env = chain.env();
            let mut fork = SourceHost::new(chain);
            let mut recorder = RecordingInspector::new();
            let result = {
                let mut both = (
                    &mut recorder,
                    ProfilingInspector::new(Arc::clone(&telemetry)),
                );
                let mut evm = Evm::with_inspector(&mut fork, env, &mut both);
                evm.call(Message::eoa_call(caller(), target, input.clone()))
            };
            observed.push(observation(result, &recorder));
        }
    }
    (observed, profile_of(&telemetry))
}

fn assert_no_divergence(chain: &Chain, targets: &[Address], probe_seed: u64) {
    let inputs = probe_inputs(probe_seed);
    let (batched, batched_profile) = run_batched(chain, targets, &inputs);
    let (fresh, fresh_profile) = run_fresh(chain, targets, &inputs);
    assert_eq!(batched.len(), fresh.len());
    for (i, (b, f)) in batched.iter().zip(fresh.iter()).enumerate() {
        assert_eq!(b, f, "probe {i} diverged between batched and fresh");
    }
    assert_eq!(
        batched_profile, fresh_profile,
        "opcode/depth profiles diverged between batched and fresh"
    );
}

/// The exploit corpus is the adversarial end of the population: probes
/// that *do* capture storage (uninitialized proxies), honeypot baits
/// that issue external calls, and collision upgrades — exactly the
/// probes where a leaked write would flip the next verdict.
#[test]
fn exploit_corpus_probes_identical_batched_and_fresh() {
    let corpus = ExploitCorpus::generate(0xE4);
    let targets: Vec<Address> = corpus
        .cases
        .iter()
        .flat_map(|case| [case.proxy, case.logic])
        .collect();
    assert_no_divergence(&corpus.chain, &targets, 0x5eed_cafe);
}

#[test]
fn landscape_probes_identical_batched_and_fresh() {
    let landscape = Landscape::generate(&LandscapeConfig {
        seed: 0x1a4d,
        total_contracts: 24,
    });
    let targets: Vec<Address> = landscape.contracts.iter().map(|c| c.address).collect();
    assert_no_divergence(&landscape.chain, &targets, 0xfee1_600d);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seed-ranging generalization: any generated landscape, any probe
    /// calldata seed — zero divergences.
    #[test]
    fn sessions_match_fresh_over_generated_landscapes(
        seed in any::<u32>(),
        probe_seed in any::<u64>(),
    ) {
        let landscape = Landscape::generate(&LandscapeConfig {
            seed: u64::from(seed),
            total_contracts: 12,
        });
        let targets: Vec<Address> =
            landscape.contracts.iter().map(|c| c.address).collect();
        assert_no_divergence(&landscape.chain, &targets, probe_seed);
    }
}
