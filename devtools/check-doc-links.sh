#!/usr/bin/env bash
# Link check for the repository's Markdown documentation.
#
# Verifies that every relative Markdown link target — `[text](path)` and
# `[text](path#anchor)` — in the top-level docs and docs/ resolves to a
# file or directory in the working tree. External links (http/https/
# mailto) are not fetched; this check is offline by design.
#
# Usage: devtools/check-doc-links.sh

set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
failures=0

for doc in "$REPO"/*.md "$REPO"/docs/*.md; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # Pull out inline link targets, one per line. Skip externals,
    # pure in-page anchors, and bare autolinks.
    targets=$(grep -oE '\]\([^)[:space:]]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' || true)
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$REPO/$path" ]; then
            echo "broken link in ${doc#"$REPO"/}: $target" >&2
            failures=$((failures + 1))
        fi
    done <<< "$targets"
done

if [ "$failures" -gt 0 ]; then
    echo "error: $failures broken Markdown link(s)" >&2
    exit 1
fi
echo "doc links ok"
