#!/usr/bin/env bash
# Shadow-workspace compile/test check for fully offline environments.
#
# The real workspace declares external dependencies (serde, parking_lot,
# crossbeam, proptest, criterion) that cannot be fetched without network
# access. This script copies the workspace to a scratch directory, patches
# those dependencies to the API-faithful stubs in devtools/offline-stubs/,
# prunes the proptest-based test targets (the stubs are resolution-only for
# proptest/criterion), and runs the build + tests offline.
#
# It never modifies the real workspace; shipped manifests stay pointed at
# the real crates.
#
# Usage: devtools/check-offline.sh [extra cargo-test args...]

set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SHADOW="${SHADOW_DIR:-/tmp/proxion-offline-shadow}"
STUBS="$REPO/devtools/offline-stubs"

# Layering invariant: the service must consume histories through the
# shared HistoryIndex (incremental timeline extension), never by calling
# the raw full-range LogicResolver — a raw resolve re-pays O(U log B)
# probes on every poll and loses the per-(proxy, slot) probe accounting.
if grep -rn "LogicResolver" "$REPO/crates/service/src"; then
    echo "error: proxion-service must use HistoryIndex, not LogicResolver" >&2
    exit 1
fi

# Replay isolation invariant: the service confirms collisions only
# against immutable ChainSnapshot sources (ServerShared::analysis_source),
# never by driving the replay EVM while holding the live chain's RwLock —
# an EVM run inside the lock would stall the block follower and every
# concurrent request for its duration. Constructing a ReplayHost directly
# (instead of going through ReplayEngine over an analysis source) or
# calling into the engine with a lock guard on the same line are the two
# grep-visible ways to break this.
if grep -rn "ReplayHost" "$REPO/crates/service/src"; then
    echo "error: proxion-service must replay via ReplayEngine over analysis_source(), never a raw ReplayHost" >&2
    exit 1
fi
if grep -rn "confirm_pair\|ReplayEngine" "$REPO/crates/service/src" | grep -n "\.read()\|\.write()"; then
    echo "error: proxion-service must not drive the replay engine while holding the chain lock" >&2
    exit 1
fi

# Probe-session invariant: every multi-probe consumer (the detector's
# crafted-calldata gate, the diamond selector prober, the replay engine)
# executes probes through a checkpointed ProbeSession, never by
# constructing a raw Evm per probe — a fresh interpreter per probe
# re-pays host setup, stack/memory allocation and jumpdest analysis, and
# sidesteps the rollback guarantee plus the probe/rollback counters the
# service exports. Raw Evm construction belongs in proxion-evm (and in
# single-shot consumers such as the chain's transact path).
if grep -rn "Evm::" \
    "$REPO/crates/core/src/proxy.rs" \
    "$REPO/crates/core/src/diamond.rs" \
    "$REPO/crates/replay/src"; then
    echo "error: detector/replay probe paths must run probes through ProbeSession, not a raw Evm" >&2
    exit 1
fi

# Syscall confinement invariant: the connection reactor talks to epoll
# and eventfd through the safe wrappers in crates/service/src/sys.rs,
# and that file is the *only* place in the service crate allowed to
# contain `unsafe`, an `extern` declaration, or a raw epoll_*/eventfd
# call. Everything above it (reactor, server, http) stays fully safe, so
# the audit surface for memory safety is one short module.
if grep -rnE '\bunsafe\b|\bextern\b|epoll_create1?\(|epoll_ctl\(|epoll_wait\(|eventfd\(' \
    "$REPO/crates/service/src" | grep -v "crates/service/src/sys.rs:"; then
    echo "error: unsafe/extern/raw syscalls in proxion-service must be confined to src/sys.rs" >&2
    exit 1
fi

# Delegation-graph invariant: the collision checks and the replay engine
# consume resolved DelegationChains (terminal logic, per-hop provenance),
# never the scalar single-hop `.impl_source()` accessor — a single-hop
# read silently checks a middle proxy instead of the terminal logic on
# chained/beacon deployments. Pattern-matching the ImplSource enum on a
# hop's `source` field stays legitimate; the banned form is the accessor
# call.
if grep -rn "\.impl_source()" \
    "$REPO/crates/core/src/funcsig.rs" \
    "$REPO/crates/core/src/storage.rs" \
    "$REPO/crates/core/src/diamond.rs" \
    "$REPO/crates/replay/src"; then
    echo "error: collision checks and replay must consume DelegationChains, not the single-hop .impl_source() accessor" >&2
    exit 1
fi

# Persistence invariant: every byte that reaches the state directory goes
# through proxion-store (header + CRC framing, tmp-then-rename sealing).
# A direct std::fs call in the service would bypass that framing and can
# leave files the tolerant loader misreads as damage. The store crate and
# the tests own their own I/O; the service must not.
if grep -rn "std::fs" "$REPO/crates/service/src"; then
    echo "error: proxion-service must not touch the filesystem directly; state I/O belongs in proxion-store" >&2
    exit 1
fi

rm -rf "$SHADOW"
mkdir -p "$SHADOW"
cp "$REPO/Cargo.toml" "$SHADOW/"
cp -r "$REPO/crates" "$REPO/tests" "$REPO/examples" "$SHADOW/"
if [ -d "$REPO/.github" ]; then cp -r "$REPO/.github" "$SHADOW/"; fi

# Prune proptest-based targets: the proptest stub is resolution-only.
rm -f "$SHADOW"/crates/*/tests/props.rs
rm -f "$SHADOW"/crates/core/tests/fuzz_robustness.rs

cat >> "$SHADOW/Cargo.toml" <<EOF

[patch.crates-io]
serde = { path = "$STUBS/serde" }
parking_lot = { path = "$STUBS/parking_lot" }
crossbeam = { path = "$STUBS/crossbeam" }
proptest = { path = "$STUBS/proptest" }
criterion = { path = "$STUBS/criterion" }
EOF

# A private CARGO_HOME sidesteps any user-level source replacement
# (registry mirrors) that would force an index fetch.
export CARGO_HOME="$SHADOW/.cargo-home"
mkdir -p "$CARGO_HOME"
touch "$CARGO_HOME/config.toml"
export CARGO_NET_OFFLINE=true

cd "$SHADOW"
cargo build --release --workspace
cargo test -q --workspace "$@"
