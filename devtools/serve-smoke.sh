#!/usr/bin/env bash
# Serve-mode smoke test: boot `proxion serve` on a loopback port, drive a
# short pipelined + batched loadgen burst at it, and fail on any 5xx (a
# healthy reactor under this light load must answer every request).
#
# Designed for CI: small landscape, one burst, seconds of wall clock.
#
# Usage: devtools/serve-smoke.sh [path-to-proxion-binary]

set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
PROXION="${1:-$REPO/target/release/proxion}"
PORT="${PROXION_SMOKE_PORT:-18474}"
LOG="$(mktemp /tmp/proxion-smoke.XXXXXX.log)"

if [ ! -x "$PROXION" ]; then
    echo "error: proxion binary not found at $PROXION (build with: cargo build --release)" >&2
    exit 1
fi

"$PROXION" serve 60 7 --port "$PORT" --workers 4 --queue 256 --no-follow \
    > "$LOG" 2>&1 &
SERVER_PID=$!
cleanup() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the server to answer /health (landscape generation takes a
# moment; the reactor accepts only once serving starts).
for _ in $(seq 1 120); do
    if "$PROXION" loadgen "127.0.0.1:$PORT" 1 1 > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "error: server exited during startup; log follows" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

run_burst() {
    local label="$1"; shift
    local out
    out="$("$PROXION" loadgen "127.0.0.1:$PORT" "$@")"
    echo "--- $label ---"
    echo "$out"
    # loadgen reports "N ok, M errors"; any error (transport failure or
    # non-200, i.e. the 5xx this smoke test exists to catch) fails CI.
    if ! echo "$out" | grep -qE '(^|[^0-9])0 errors'; then
        echo "error: $label burst reported errors" >&2
        exit 1
    fi
}

run_burst "pipelined" 8 40 --pipeline 4
run_burst "batched"   4 10 --pipeline 2 --batch 16

echo "serve smoke OK: pipelined + batched bursts completed with zero errors"
