//! Resolution-only stand-in for `criterion`.
//!
//! Bench targets are never built by the shadow check (cargo test excludes
//! benches by default), so this crate only needs to exist for dependency
//! resolution — it deliberately exports nothing.
