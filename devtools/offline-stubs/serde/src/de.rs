//! Deserialization half of the stub — the minimal subset the workspace
//! exercises (`String::deserialize` plus `de::Error::custom`).

use std::fmt::{self, Display};

/// Trait alias matching `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds a deserializer-specific error from a message.
    fn custom<T>(msg: T) -> Self
    where
        T: Display;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A format that can drive deserialization (stub subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Self-describing formats dispatch on the input here.
    fn deserialize_any<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;

    /// Hints that a string is expected.
    fn deserialize_str<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>,
    {
        self.deserialize_any(visitor)
    }

    /// Hints that an owned string is expected.
    fn deserialize_string<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>,
    {
        self.deserialize_str(visitor)
    }
}

/// Walks values produced by a deserializer.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Describes what the visitor expects (used in error messages).
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    /// Visits a borrowed string.
    fn visit_str<E>(self, _v: &str) -> Result<Self::Value, E>
    where
        E: Error,
    {
        Err(E::custom("invalid type: string"))
    }

    /// Visits an owned string.
    fn visit_string<E>(self, v: String) -> Result<Self::Value, E>
    where
        E: Error,
    {
        self.visit_str(&v)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}
