//! Offline stand-in for the `serde` crate.
//!
//! This is **not** serde. It is a strict subset of serde 1.0's public API —
//! the `Serialize`/`Serializer` data-model traits, the `Deserialize` entry
//! points the workspace actually exercises, and blanket impls for the std
//! types the workspace serializes — with signatures copied from the real
//! crate so that source code compiling against this stub also compiles
//! against real serde. It exists only so the workspace can be built and
//! tested in a container with no crates.io access (see devtools/README.md);
//! release builds use the real crate.

pub use serde_derive::{Deserialize, Serialize};

pub mod ser;
pub mod de;

pub use ser::{Serialize, Serializer};
pub use de::{Deserialize, Deserializer};
