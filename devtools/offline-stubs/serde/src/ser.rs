//! Serialization half of the stub: trait signatures copied from serde 1.0.

use std::fmt::Display;

/// Trait alias matching `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds a serializer-specific error from a message.
    fn custom<T>(msg: T) -> Self
    where
        T: Display;
}

/// A data structure that can be serialized (serde's data model).
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Serialize;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Serialize;
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Serialize;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Provided method, as in real serde.
    fn serialize_i128(self, _v: i128) -> Result<Self::Ok, Self::Error> {
        Err(Error::custom("i128 is not supported"))
    }

    /// Provided method, as in real serde.
    fn serialize_u128(self, _v: u128) -> Result<Self::Ok, Self::Error> {
        Err(Error::custom("u128 is not supported"))
    }

    /// Provided method, as in real serde.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let iter = iter.into_iter();
        let mut seq = self.serialize_seq(iter.size_hint().1)?;
        for item in iter {
            seq.serialize_element(&item)?;
        }
        seq.end()
    }

    /// Provided method, as in real serde.
    fn collect_map<K, V, I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>,
    {
        let iter = iter.into_iter();
        let mut map = self.serialize_map(iter.size_hint().1)?;
        for (key, value) in iter {
            map.serialize_entry(&key, &value)?;
        }
        map.end()
    }

    /// Provided method, as in real serde.
    fn collect_str<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Display,
    {
        self.serialize_str(&value.to_string())
    }

    /// Provided method, as in real serde.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Sub-serializer for sequences.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuples.
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuple structs.
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for maps.
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: ?Sized + Serialize,
        V: ?Sized + Serialize,
    {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for structs.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn skip_field(&mut self, _key: &'static str) -> Result<(), Self::Error> {
        Ok(())
    }
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer for struct enum variants.
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A sub-serializer that can never be instantiated (mirrors
/// `serde::ser::Impossible` for serializers without compound support).
pub struct Impossible<Ok, Error> {
    void: Void,
    _marker: std::marker::PhantomData<(Ok, Error)>,
}

enum Void {}

macro_rules! impossible {
    ($($trait_:ident { $($fn_:ident $(($key:ty))?),* })*) => {
        $(impl<Ok, E: Error> $trait_ for Impossible<Ok, E> {
            type Ok = Ok;
            type Error = E;
            $(fn $fn_<T>(&mut self, $(_: $key,)? _: &T) -> Result<(), E>
            where
                T: ?Sized + Serialize,
            {
                match self.void {}
            })*
            fn end(self) -> Result<Ok, E> {
                match self.void {}
            }
        })*
    };
}

impossible! {
    SerializeSeq { serialize_element }
    SerializeTuple { serialize_element }
    SerializeTupleStruct { serialize_field }
    SerializeTupleVariant { serialize_field }
    SerializeStruct { serialize_field(&'static str) }
    SerializeStructVariant { serialize_field(&'static str) }
}

impl<Ok, E: Error> SerializeMap for Impossible<Ok, E> {
    type Ok = Ok;
    type Error = E;
    fn serialize_key<T>(&mut self, _: &T) -> Result<(), E>
    where
        T: ?Sized + Serialize,
    {
        match self.void {}
    }
    fn serialize_value<T>(&mut self, _: &T) -> Result<(), E>
    where
        T: ?Sized + Serialize,
    {
        match self.void {}
    }
    fn end(self) -> Result<Ok, E> {
        match self.void {}
    }
}

// ---- Serialize impls for std types (the subset the workspace uses) ----

macro_rules! primitive_impl {
    ($($ty:ty => $method:ident as $as_:ty,)*) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $as_)
            }
        })*
    };
}

primitive_impl! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

// Real serde serializes fixed-size arrays as tuples.
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for item in self {
            SerializeTuple::serialize_element(&mut tuple, item)?;
        }
        SerializeTuple::end(tuple)
    }
}

impl<'a, T: ?Sized + Serialize> Serialize for &'a T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'a, T: ?Sized + Serialize> Serialize for &'a mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident $index:tt),+) => $len:expr,)*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(SerializeTuple::serialize_element(&mut tuple, &self.$index)?;)+
                SerializeTuple::end(tuple)
            }
        })*
    };
}

tuple_impl! {
    (A 0) => 1,
    (A 0, B 1) => 2,
    (A 0, B 1, C 2) => 3,
    (A 0, B 1, C 2, D 3) => 4,
}
