//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Mirrors the non-poisoning API of parking_lot's `Mutex`, `RwLock` and
//! `Condvar` at the call sites this workspace uses. Poisoning from std is
//! swallowed (parking_lot has no poisoning), so a panic while holding a
//! lock does not cascade into unrelated test failures.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(|e| e.into_inner()),
        ))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
