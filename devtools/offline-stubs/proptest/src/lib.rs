//! Resolution-only stand-in for `proptest`.
//!
//! The shadow check (devtools/check-offline.sh) prunes every test target
//! that uses proptest before building, so this crate only needs to exist
//! for dependency resolution — it deliberately exports nothing.
