//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace uses —
//! non-generic structs with named fields, tuple structs, and enums whose
//! variants are unit, newtype, tuple, or struct-shaped — producing the same
//! externally-tagged output as real serde. Parsing is done directly over
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline). Unsupported shapes fail the build loudly rather than
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (stub; supported subset only).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives `serde::Deserialize` (stub; nothing in the workspace derives
/// it, so the generated impl simply fails at runtime if ever invoked).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, _kind, _body) = match parse_item(&tokens) {
        Ok(parts) => parts,
        Err(msg) => return format!("compile_error!({msg:?});").parse().unwrap(),
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {{\n\
                 Err(serde::de::Error::custom(\"stub Deserialize derive\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

enum ItemKind {
    Struct,
    Enum,
}

/// Splits the item into (type name, kind, body group tokens).
fn parse_item(tokens: &[TokenTree]) -> Result<(String, ItemKind, Vec<TokenTree>), String> {
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility/keywords until struct/enum.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break ItemKind::Struct;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break ItemKind::Enum;
            }
            Some(_) => i += 1,
            None => return Err("stub serde derive: no struct/enum found".into()),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("stub serde derive: missing type name".into()),
    };
    i += 1;
    // Reject generics: the workspace derives only on plain types.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "stub serde derive: generic type {name} is not supported"
            ));
        }
    }
    // Find the body: a brace group (named struct/enum) or parens + `;`
    // (tuple struct).
    for tree in &tokens[i..] {
        match tree {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return Ok((name, kind, g.stream().into_iter().collect()));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let mut body: Vec<TokenTree> = g.stream().into_iter().collect();
                // Mark tuple-struct bodies with a leading `()` sentinel so
                // the caller can tell them apart from named fields.
                body.insert(
                    0,
                    TokenTree::Group(proc_macro::Group::new(
                        Delimiter::Parenthesis,
                        TokenStream::new(),
                    )),
                );
                return Ok((name, kind, body));
            }
            _ => {}
        }
    }
    Err(format!("stub serde derive: no body found for {name}"))
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, kind, body) = parse_item(&tokens)?;
    let serialize_body = match kind {
        ItemKind::Struct => generate_struct(&name, &body)?,
        ItemKind::Enum => generate_enum(&name, &body)?,
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, serializer: S) \
                 -> Result<S::Ok, S::Error> {{\n\
                 {serialize_body}\n\
             }}\n\
         }}"
    ))
}

/// Field names of a named-field body (`a: T, pub b: U, ...`), skipping
/// attributes, visibility and types (angle-bracket aware).
fn named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        // Skip `pub` / `pub(crate)`.
        if let Some(TokenTree::Ident(id)) = body.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let field = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!("stub serde derive: unexpected token {other}"));
            }
            None => break,
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("stub serde derive: expected `:` after {field}")),
        }
        // Skip the type: consume until a comma at angle depth 0.
        let mut angle_depth = 0i32;
        while let Some(tree) = body.get(i) {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Number of fields in a tuple body (`T, U, ...`).
fn tuple_arity(body: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tree in body {
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn generate_struct(name: &str, body: &[TokenTree]) -> Result<String, String> {
    if matches!(body.first(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
    {
        // Tuple struct (sentinel group prepended by parse_item).
        let arity = tuple_arity(&body[1..]);
        if arity == 1 {
            return Ok(format!(
                "serializer.serialize_newtype_struct({name:?}, &self.0)"
            ));
        }
        let mut out = String::new();
        out.push_str("use serde::ser::SerializeTupleStruct as _;\n");
        out.push_str(&format!(
            "let mut state = serializer.serialize_tuple_struct({name:?}, {arity})?;\n"
        ));
        for index in 0..arity {
            out.push_str(&format!("state.serialize_field(&self.{index})?;\n"));
        }
        out.push_str("state.end()");
        return Ok(out);
    }
    let fields = named_fields(body)?;
    let mut out = String::new();
    out.push_str("use serde::ser::SerializeStruct as _;\n");
    out.push_str(&format!(
        "let mut state = serializer.serialize_struct({name:?}, {})?;\n",
        fields.len()
    ));
    for field in &fields {
        out.push_str(&format!(
            "state.serialize_field({field:?}, &self.{field})?;\n"
        ));
    }
    out.push_str("state.end()");
    Ok(out)
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("stub serde derive: unexpected {other}")),
            None => break,
        };
        i += 1;
        let shape = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Tuple(tuple_arity(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Struct(named_fields(&inner)?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(tree) = body.get(i) {
            if matches!(tree, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn generate_enum(name: &str, body: &[TokenTree]) -> Result<String, String> {
    let variants = parse_variants(body)?;
    if variants.is_empty() {
        return Err(format!("stub serde derive: empty enum {name}"));
    }
    let mut out = String::new();
    out.push_str("match self {\n");
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.shape {
            VariantShape::Unit => {
                out.push_str(&format!(
                    "{name}::{vname} => serializer.serialize_unit_variant\
                     ({name:?}, {index}, {vname:?}),\n"
                ));
            }
            VariantShape::Tuple(1) => {
                out.push_str(&format!(
                    "{name}::{vname}(f0) => serializer.serialize_newtype_variant\
                     ({name:?}, {index}, {vname:?}, f0),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|j| format!("f{j}")).collect();
                out.push_str(&format!(
                    "{name}::{vname}({}) => {{\n\
                         use serde::ser::SerializeTupleVariant as _;\n\
                         let mut state = serializer.serialize_tuple_variant\
                         ({name:?}, {index}, {vname:?}, {arity})?;\n",
                    binders.join(", ")
                ));
                for binder in &binders {
                    out.push_str(&format!("state.serialize_field({binder})?;\n"));
                }
                out.push_str("state.end()\n},\n");
            }
            VariantShape::Struct(fields) => {
                out.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                         use serde::ser::SerializeStructVariant as _;\n\
                         let mut state = serializer.serialize_struct_variant\
                         ({name:?}, {index}, {vname:?}, {})?;\n",
                    fields.join(", "),
                    fields.len()
                ));
                for field in fields {
                    out.push_str(&format!("state.serialize_field({field:?}, {field})?;\n"));
                }
                out.push_str("state.end()\n},\n");
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}
