//! A small MPMC channel mirroring `crossbeam::channel` at the call sites
//! this workspace uses (`bounded`, `try_send`, `send`, `recv`,
//! `recv_timeout`, clonable senders and receivers).
//!
//! Unlike real crossbeam, a bounded capacity of 0 is not a rendezvous
//! channel here; callers in this workspace always use capacities >= 1.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// Sending half of a channel.
pub struct Sender<T>(Arc<Inner<T>>);

/// Receiving half of a channel.
pub struct Receiver<T>(Arc<Inner<T>>);

/// Error for [`Sender::send`] on a disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error for [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error for [`Receiver::recv`] on an empty, disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// All senders are gone and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Creates a channel holding at most `capacity` queued messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity))
}

/// Creates a channel with unlimited queueing.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

impl<T> Inner<T> {
    fn is_full(&self, state: &State<T>) -> bool {
        self.capacity.is_some_and(|cap| state.queue.len() >= cap)
    }
}

impl<T> Sender<T> {
    /// Sends without blocking, failing if the queue is full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.0.is_full(&state) {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Sends, blocking while the queue is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if !self.0.is_full(&state) {
                state.queue.push_back(value);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            state = self.0.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.0.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, _) = self
                .0
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        if state.senders == 0 {
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        if state.receivers == 0 {
            self.0.not_full.notify_all();
        }
    }
}
