//! Offline stand-in for `crossbeam`, covering the API surface this
//! workspace uses: `crossbeam::scope` (over `std::thread::scope`) and
//! `crossbeam::channel::{bounded, unbounded}` (a small MPMC channel built
//! on `Mutex` + `Condvar`).

use std::any::Any;

pub mod channel;

/// A scope handle mirroring `crossbeam::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (unused by
    /// this workspace, but part of crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Creates a scope in which spawned threads may borrow from the caller's
/// stack; all threads are joined before `scope` returns (matching
/// `crossbeam::scope`'s contract and signature).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, as re-exported by the facade crate.
pub mod thread {
    pub use super::{scope, Scope};
}
